//! Minimal `--flag value` command-line parsing (no external dependency).

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments: `--key value`, `--key=value`, and
    /// bare `--switch` (stored as `"true"`).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (for tests).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut flags = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            let Some(key) = a.strip_prefix("--") else {
                eprintln!("ignoring positional argument: {a}");
                continue;
            };
            if let Some((k, v)) = key.split_once('=') {
                flags.insert(k.to_string(), v.to_string());
            } else if iter.peek().is_some_and(|n| !n.starts_with("--")) {
                flags.insert(key.to_string(), iter.next().unwrap());
            } else {
                flags.insert(key.to_string(), "true".to_string());
            }
        }
        Self { flags }
    }

    /// Integer flag with default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.flags
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// Boolean switch (present or `--key true`).
    pub fn flag(&self, key: &str) -> bool {
        self.flags.get(key).map(|v| v != "false").unwrap_or(false)
    }

    /// String flag with default.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::from_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn key_value_pairs() {
        let a = parse(&["--level", "7", "--dims=10"]);
        assert_eq!(a.usize("level", 1), 7);
        assert_eq!(a.usize("dims", 1), 10);
        assert_eq!(a.usize("missing", 42), 42);
    }

    #[test]
    fn switches() {
        let a = parse(&["--full", "--quick", "false"]);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert!(!a.flag("absent"));
    }

    #[test]
    fn strings() {
        let a = parse(&["--out", "results"]);
        assert_eq!(a.str("out", "x"), "results");
        assert_eq!(a.str("other", "x"), "x");
    }
}
