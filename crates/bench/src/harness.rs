//! Minimal benchmark harness for the `benches/` targets.
//!
//! A small, dependency-free stand-in for the usual bench frameworks:
//! named groups of benchmarks, median-of-N wall-clock timing with one
//! warmup run, substring filtering from the command line, aligned table
//! output, and a machine-readable JSON record under `results/` in the
//! same `{title, headers, rows}` + optional `telemetry` shape as the
//! figure binaries (see `report::save_json` and `attach_telemetry`).
//!
//! Usage from a `harness = false` bench target:
//!
//! ```no_run
//! let mut h = sg_bench::harness::Harness::from_args("example");
//! {
//!     let mut g = h.group("group_name");
//!     g.sample_size(10);
//!     g.bench("fast_case", || 40 + 2);
//! }
//! h.finish();
//! ```
//!
//! Command line: any free argument is a substring filter on
//! `group/benchmark` names; `--quick` caps sampling at 3 runs; the
//! `--bench` flag cargo passes is ignored. `SG_BENCH_SAMPLES` overrides
//! every group's sample size.

use crate::report::{save_json, Table};
use sg_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

/// One completed measurement.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    id: String,
    samples: usize,
    median_s: f64,
    min_s: f64,
    /// Elements processed per invocation, for throughput reporting.
    elements: Option<u64>,
    /// Every timed sample, for trajectory percentiles.
    times_s: Vec<f64>,
    /// Instrument delta attributable to this benchmark's reps alone
    /// (`snapshot_delta` against a baseline captured before the timed
    /// loop), so repetitions don't smear into whole-process totals.
    /// `None` when the measured crates were built without telemetry.
    telemetry_delta: Option<Value>,
}

/// Collects benchmark results for one bench target.
#[derive(Debug)]
pub struct Harness {
    name: String,
    filter: Option<String>,
    quick: bool,
    records: Vec<Record>,
}

impl Harness {
    /// Parse the command line; `name` tags the JSON record
    /// (`results/bench_<name>.json`).
    pub fn from_args(name: &str) -> Self {
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" => {} // cargo bench/test plumbing
                "--quick" => quick = true,
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Self {
            name: name.to_string(),
            filter,
            quick,
            records: Vec::new(),
        }
    }

    /// Open a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            samples: 10,
            elements: None,
        }
    }

    fn accepts(&self, group: &str, id: &str) -> bool {
        match &self.filter {
            Some(f) => format!("{group}/{id}").contains(f.as_str()),
            None => true,
        }
    }

    fn effective_samples(&self, group_samples: usize) -> usize {
        let n = std::env::var("SG_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(group_samples);
        if self.quick { n.min(3) } else { n }.max(1)
    }

    /// Print the results table and save the JSON record.
    pub fn finish(self) {
        let mut table = Table::new(
            &format!("bench: {}", self.name),
            &[
                "group",
                "benchmark",
                "samples",
                "median",
                "min",
                "throughput",
            ],
        );
        let mut raw = Vec::new();
        for r in &self.records {
            let thr = match r.elements {
                Some(n) if r.median_s > 0.0 => {
                    format!("{:.0} elem/s", n as f64 / r.median_s)
                }
                _ => "-".to_string(),
            };
            table.add_row(vec![
                r.group.clone(),
                r.id.clone(),
                r.samples.to_string(),
                crate::fmt_secs(r.median_s),
                crate::fmt_secs(r.min_s),
                thr,
            ]);
            let mut entry = json!({
                "group": r.group.clone(),
                "id": r.id.clone(),
                "samples": r.samples,
                "median_s": r.median_s,
                "min_s": r.min_s,
                "elements": match r.elements {
                    Some(n) => Value::from(n),
                    None => Value::Null,
                },
            });
            if let Some(delta) = &r.telemetry_delta {
                entry["telemetry_delta"] = delta.clone();
            }
            raw.push(entry);
        }
        table.print();
        let record = json!({
            "experiment": format!("bench_{}", self.name),
            "table": table.to_json(),
            "raw": raw,
        });
        let record = crate::attach_telemetry(record);
        match save_json(&format!("bench_{}", self.name), &record) {
            Ok(p) => println!("saved {}", p.display()),
            Err(e) => eprintln!("could not save JSON record: {e}"),
        }
        let metrics: Vec<(String, crate::trajectory::MetricStats)> = self
            .records
            .iter()
            .filter_map(|r| {
                crate::trajectory::MetricStats::from_samples(&r.times_s)
                    .map(|s| (format!("{}/{}", r.group, r.id), s))
            })
            .collect();
        match crate::trajectory::record_run(&format!("bench_{}", self.name), &metrics) {
            Ok(p) => println!("trajectory updated: {}", p.display()),
            Err(e) => eprintln!("could not update trajectory: {e}"),
        }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    samples: usize,
    elements: Option<u64>,
}

impl Group<'_> {
    /// Number of timed runs per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declare elements processed per invocation so `finish` can report
    /// throughput. Applies to benchmarks registered *after* the call.
    pub fn throughput_elements(&mut self, n: u64) -> &mut Self {
        self.elements = Some(n);
        self
    }

    /// Time `f` (median of the group's sample count, one warmup run).
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        self.bench_with_setup(id, || (), |()| f());
    }

    /// Time `run(setup())`, excluding the setup from the measurement.
    pub fn bench_with_setup<S, R>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> S,
        mut run: impl FnMut(S) -> R,
    ) {
        if !self.harness.accepts(&self.name, id) {
            return;
        }
        let samples = self.harness.effective_samples(self.samples);
        black_box(run(setup())); // warmup
        let baseline = sg_telemetry::snapshot();
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(run(input));
            times.push(t0.elapsed().as_secs_f64());
        }
        let delta = sg_telemetry::snapshot_delta(&baseline);
        let telemetry_delta =
            (!delta.counters.is_empty() || !delta.spans.is_empty() || !delta.hists.is_empty())
                .then(|| delta.to_json());
        times.sort_by(f64::total_cmp);
        let median_s = times[times.len() / 2];
        let record = Record {
            group: self.name.clone(),
            id: id.to_string(),
            samples,
            median_s,
            min_s: times[0],
            elements: self.elements,
            times_s: times,
            telemetry_delta,
        };
        eprintln!(
            "{}/{}: median {} (min {})",
            record.group,
            record.id,
            crate::fmt_secs(record.median_s),
            crate::fmt_secs(record.min_s)
        );
        self.harness.records.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut h = Harness {
            name: "t".into(),
            filter: Some("keep".into()),
            quick: true,
            records: Vec::new(),
        };
        {
            let mut g = h.group("g");
            g.sample_size(2);
            g.bench("keep_me", || 1 + 1);
            g.bench("drop_me", || panic!("filtered out, never run"));
        }
        assert_eq!(h.records.len(), 1);
        assert_eq!(h.records[0].id, "keep_me");
        assert!(h.records[0].median_s >= 0.0);
        assert!(h.records[0].min_s <= h.records[0].median_s);
    }

    #[test]
    fn setup_is_not_timed_but_runs_per_sample() {
        let mut h = Harness {
            name: "t".into(),
            filter: None,
            quick: false,
            records: Vec::new(),
        };
        let mut setups = 0usize;
        {
            let mut g = h.group("g");
            g.sample_size(4);
            g.bench_with_setup(
                "case",
                || {
                    setups += 1;
                },
                |()| (),
            );
        }
        // One warmup + four timed samples.
        assert_eq!(setups, 5);
        assert_eq!(h.records[0].samples, 4);
    }
}
