//! Perf-regression sentry over `results/BENCH_<name>.json` trajectories.
//!
//! The trajectory files record one entry per figure run; this module is
//! what *watches* them. For every metric it fits a noise band over the
//! trailing window of historical p50s with robust statistics — median
//! plus MAD (median absolute deviation), which a single outlier cannot
//! drag the way a mean/stddev fit can — and flags the newest run when it
//! falls outside `median ± max(k·MAD, rel_floor·median)`. The relative
//! floor keeps a metric whose history happens to be noise-free (MAD = 0,
//! common with few runs or coarse timers) from tripping on any
//! fluctuation at all; `k·MAD` covers the usual case. Metrics whose
//! name contains `"speedup"` are higher-is-better and gate on the lower
//! side; everything else (seconds) gates on the upper side.
//!
//! Short histories **pass**: with fewer than [`GateConfig::min_runs`]
//! total entries there is no basis for a band, and a fresh clone must
//! not fail CI. `sgtool gate` is the CLI front end; the CI perf-gate job
//! proves an injected 10× regression is caught.

use sg_json::{json, Value};

/// Tuning knobs for the regression fit.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// How many trailing historical runs (excluding the newest) feed the
    /// band fit.
    pub window: usize,
    /// Minimum total entries a trajectory needs before the gate engages;
    /// below this every metric reports [`GateStatus::Insufficient`]
    /// (which passes).
    pub min_runs: usize,
    /// Band half-width in MADs.
    pub k: f64,
    /// Relative floor on the band half-width, as a fraction of the
    /// median (guards the MAD = 0 degenerate case).
    pub rel_floor: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            window: 20,
            min_runs: 5,
            k: 6.0,
            rel_floor: 0.10,
        }
    }
}

/// Gate outcome for one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum GateStatus {
    /// Newest run is inside the noise band.
    Ok,
    /// Too little history to fit a band; passes by design.
    Insufficient,
    /// Newest run breached the band on the failing side.
    Regressed {
        /// Band edge the newest value crossed.
        threshold: f64,
        /// `newest / median` (or its inverse for higher-is-better
        /// metrics), i.e. "how many × worse".
        factor: f64,
    },
}

/// One metric's fitted band and verdict.
#[derive(Debug, Clone)]
pub struct MetricGate {
    /// Metric name as recorded in the trajectory (e.g.
    /// `d5/compact/hierarchize_s`).
    pub metric: String,
    /// Newest run's p50.
    pub newest: f64,
    /// Median p50 over the trailing window (0 when insufficient).
    pub median: f64,
    /// Median absolute deviation over the window.
    pub mad: f64,
    /// Band half-width actually applied: `max(k·MAD, rel_floor·median)`.
    pub band: f64,
    /// Historical samples the fit saw (excluding the newest run).
    pub history: usize,
    /// Whether larger values are better (name contains `"speedup"`).
    pub higher_is_better: bool,
    /// The verdict.
    pub status: GateStatus,
}

impl MetricGate {
    /// One-line human diagnosis, e.g.
    /// `REGRESSION d5/compact/hierarchize_s: p50 1.20e-2 vs median 1.00e-3 (12.0x, band ±6.0e-5, n=20)`.
    pub fn diagnosis(&self) -> String {
        match &self.status {
            GateStatus::Ok => format!(
                "ok         {}: p50 {:.3e} within median {:.3e} ± {:.1e} (n={})",
                self.metric, self.newest, self.median, self.band, self.history
            ),
            GateStatus::Insufficient => format!(
                "skip       {}: only {} historical run(s), need more before gating",
                self.metric, self.history
            ),
            GateStatus::Regressed { factor, .. } => format!(
                "REGRESSION {}: p50 {:.3e} vs median {:.3e} ({:.1}x {}, band ±{:.1e}, n={})",
                self.metric,
                self.newest,
                self.median,
                factor,
                if self.higher_is_better {
                    "slower-than-band (speedup fell)"
                } else {
                    "worse"
                },
                self.band,
                self.history
            ),
        }
    }
}

/// The full gate report for one trajectory file.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Experiment name from the trajectory header.
    pub experiment: String,
    /// Total run entries in the trajectory.
    pub runs: usize,
    /// Per-metric verdicts, in the newest run's metric order.
    pub metrics: Vec<MetricGate>,
}

impl GateReport {
    /// Metrics whose newest run breached the band.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricGate> {
        self.metrics
            .iter()
            .filter(|m| matches!(m.status, GateStatus::Regressed { .. }))
    }

    /// `true` when no metric regressed.
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }

    /// Machine-readable verdict, mirroring [`MetricGate::diagnosis`].
    pub fn to_json(&self) -> Value {
        let metrics: Vec<Value> = self
            .metrics
            .iter()
            .map(|m| {
                let status = match &m.status {
                    GateStatus::Ok => "ok",
                    GateStatus::Insufficient => "insufficient",
                    GateStatus::Regressed { .. } => "regressed",
                };
                let mut v = json!({
                    "metric": m.metric.clone(),
                    "status": status,
                    "newest_p50_s": m.newest,
                    "median_p50_s": m.median,
                    "mad_s": m.mad,
                    "band_s": m.band,
                    "history": m.history,
                    "higher_is_better": m.higher_is_better,
                });
                if let GateStatus::Regressed { threshold, factor } = &m.status {
                    v["threshold_s"] = Value::from(*threshold);
                    v["factor"] = Value::from(*factor);
                }
                v
            })
            .collect();
        let mut doc = json!({
            "experiment": self.experiment.clone(),
            "runs": self.runs as f64,
            "passed": self.passed(),
        });
        doc["metrics"] = Value::Array(metrics);
        doc
    }
}

/// Median of a non-empty slice (mean of the middle pair for even
/// lengths).
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median + MAD of a non-empty sample set.
fn robust_stats(samples: &[f64]) -> (f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let med = median(&sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|&x| (x - med).abs()).collect();
    dev.sort_by(f64::total_cmp);
    (med, median(&dev))
}

/// Pull the p50 series of `metric` out of `runs`, oldest first; entries
/// missing the metric are skipped (trajectories evolve their metric
/// sets).
fn p50_series(runs: &[Value], metric: &str) -> Vec<f64> {
    runs.iter()
        .filter_map(|run| {
            run.get("metrics")
                .and_then(|m| m.get(metric))
                .and_then(|m| m.get("p50_s"))
                .and_then(|v| v.as_f64())
        })
        .collect()
}

/// Analyze one parsed trajectory document. Returns `Err` with a
/// diagnostic when the document does not have the trajectory shape
/// (missing `runs` array, or a run without a `metrics` object).
pub fn analyze_trajectory(doc: &Value, cfg: &GateConfig) -> Result<GateReport, String> {
    let experiment = doc
        .get("experiment")
        .and_then(|e| e.as_str())
        .unwrap_or("unknown")
        .to_string();
    let runs = doc
        .get("runs")
        .and_then(|r| r.as_array())
        .ok_or("trajectory has no \"runs\" array")?;
    let Some(newest) = runs.last() else {
        return Ok(GateReport {
            experiment,
            runs: 0,
            metrics: Vec::new(),
        });
    };
    let newest_metrics = newest
        .get("metrics")
        .and_then(|m| m.as_object())
        .ok_or("newest run has no \"metrics\" object")?;

    let mut metrics = Vec::new();
    for (name, stat) in newest_metrics {
        let Some(newest_p50) = stat.get("p50_s").and_then(|v| v.as_f64()) else {
            return Err(format!(
                "metric {name:?} in newest run has no numeric p50_s"
            ));
        };
        let higher_is_better = name.contains("speedup");
        // History: every earlier run's p50, clipped to the trailing
        // window.
        let mut series = p50_series(&runs[..runs.len() - 1], name);
        if series.len() > cfg.window {
            series.drain(..series.len() - cfg.window);
        }
        let gate = if runs.len() < cfg.min_runs || series.is_empty() {
            MetricGate {
                metric: name.clone(),
                newest: newest_p50,
                median: 0.0,
                mad: 0.0,
                band: 0.0,
                history: series.len(),
                higher_is_better,
                status: GateStatus::Insufficient,
            }
        } else {
            let (med, mad) = robust_stats(&series);
            let band = (cfg.k * mad).max(cfg.rel_floor * med.abs());
            let (breached, threshold) = if higher_is_better {
                (newest_p50 < med - band, med - band)
            } else {
                (newest_p50 > med + band, med + band)
            };
            let status = if breached {
                let factor = if higher_is_better {
                    if newest_p50 > 0.0 {
                        med / newest_p50
                    } else {
                        f64::INFINITY
                    }
                } else if med > 0.0 {
                    newest_p50 / med
                } else {
                    f64::INFINITY
                };
                GateStatus::Regressed { threshold, factor }
            } else {
                GateStatus::Ok
            };
            MetricGate {
                metric: name.clone(),
                newest: newest_p50,
                median: med,
                mad,
                band,
                history: series.len(),
                higher_is_better,
                status,
            }
        };
        metrics.push(gate);
    }
    Ok(GateReport {
        experiment,
        runs: runs.len(),
        metrics,
    })
}

/// Parse + analyze a trajectory file's text.
pub fn analyze_trajectory_text(text: &str, cfg: &GateConfig) -> Result<GateReport, String> {
    let doc = sg_json::parse(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
    analyze_trajectory(&doc, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory(p50s_by_metric: &[(&str, &[f64])]) -> Value {
        let n = p50s_by_metric[0].1.len();
        let runs: Vec<Value> = (0..n)
            .map(|i| {
                let mut metrics = json!({});
                for (name, series) in p50s_by_metric {
                    metrics.set(
                        name,
                        json!({ "count": 1, "p50_s": series[i], "p90_s": series[i],
                                "p99_s": series[i], "min_s": series[i], "max_s": series[i] }),
                    );
                }
                let mut run = json!({});
                run["provenance"] = json!({ "timestamp_utc": "2026-01-01T00:00:00Z" });
                run["metrics"] = metrics;
                run
            })
            .collect();
        let mut doc = json!({ "experiment": "test" });
        doc["runs"] = Value::Array(runs);
        doc
    }

    #[test]
    fn clean_history_passes() {
        let series: Vec<f64> = (0..12)
            .map(|i| 1.0e-3 * (1.0 + 0.01 * (i % 3) as f64))
            .collect();
        let doc = trajectory(&[("d5/compact/hierarchize_s", &series)]);
        let rep = analyze_trajectory(&doc, &GateConfig::default()).unwrap();
        assert!(rep.passed());
        assert!(matches!(rep.metrics[0].status, GateStatus::Ok));
    }

    #[test]
    fn ten_x_regression_is_caught() {
        let mut series = vec![1.0e-3; 10];
        series.push(1.0e-2); // 10× slower
        let doc = trajectory(&[("d5/compact/hierarchize_s", &series)]);
        let rep = analyze_trajectory(&doc, &GateConfig::default()).unwrap();
        assert!(!rep.passed());
        let m = &rep.metrics[0];
        match &m.status {
            GateStatus::Regressed { factor, .. } => {
                assert!((factor - 10.0).abs() < 1e-9, "factor {factor}")
            }
            other => panic!("expected regression, got {other:?}"),
        }
        assert!(m.diagnosis().starts_with("REGRESSION"));
    }

    #[test]
    fn zero_mad_history_uses_relative_floor() {
        // Identical history (MAD = 0) must not flag ordinary noise...
        let mut series = vec![1.0e-3; 10];
        series.push(1.05e-3); // +5% — inside the 10% floor
        let doc = trajectory(&[("m_s", &series)]);
        let rep = analyze_trajectory(&doc, &GateConfig::default()).unwrap();
        assert!(rep.passed());
        // ...but a 2× jump still trips.
        let mut series = vec![1.0e-3; 10];
        series.push(2.0e-3);
        let doc = trajectory(&[("m_s", &series)]);
        assert!(!analyze_trajectory(&doc, &GateConfig::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn short_history_passes_without_gating() {
        for n in 1..5 {
            let series = vec![1.0e-3; n - 1]
                .into_iter()
                .chain([1.0]) // wildly slow newest run
                .collect::<Vec<_>>();
            let doc = trajectory(&[("m_s", &series)]);
            let rep = analyze_trajectory(&doc, &GateConfig::default()).unwrap();
            assert!(rep.passed(), "n={n} should pass on the min-sample guard");
            assert!(matches!(rep.metrics[0].status, GateStatus::Insufficient));
        }
    }

    #[test]
    fn speedup_metrics_gate_on_the_lower_side() {
        // A speedup *drop* is the regression...
        let mut series = vec![4.0; 10];
        series.push(1.5);
        let doc = trajectory(&[("d5/compact/simd_hier_speedup", &series)]);
        let rep = analyze_trajectory(&doc, &GateConfig::default()).unwrap();
        assert!(!rep.passed());
        // ...and a speedup *gain* is not.
        let mut series = vec![4.0; 10];
        series.push(8.0);
        let doc = trajectory(&[("d5/compact/simd_hier_speedup", &series)]);
        assert!(analyze_trajectory(&doc, &GateConfig::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn single_outlier_in_history_does_not_poison_the_band() {
        // One historical glitch: the median/MAD fit shrugs it off, a
        // mean/stddev fit would have widened the band ~3×.
        let mut series = vec![1.0e-3; 6];
        series.push(50.0e-3); // glitch
        series.extend([1.0e-3; 5]);
        series.push(1.02e-3); // clean newest
        let doc = trajectory(&[("m_s", &series)]);
        let rep = analyze_trajectory(&doc, &GateConfig::default()).unwrap();
        assert!(rep.passed());
        // The fitted median stayed at the true center.
        assert!((rep.metrics[0].median - 1.0e-3).abs() < 1e-9);
    }

    #[test]
    fn window_clips_old_history() {
        // Ancient slow runs outside the window must not mask a fresh
        // regression against the recent (fast) regime.
        let mut series = vec![1.0; 30]; // ancient, slow era
        series.extend([1.0e-3; 20]); // recent fast era fills the window
        series.push(1.0e-2); // 10× vs recent
        let doc = trajectory(&[("m_s", &series)]);
        let rep = analyze_trajectory(&doc, &GateConfig::default()).unwrap();
        assert!(!rep.passed());
        assert_eq!(rep.metrics[0].history, 20);
    }

    #[test]
    fn malformed_trajectories_error_rather_than_panic() {
        let cfg = GateConfig::default();
        assert!(analyze_trajectory_text("not json at all", &cfg).is_err());
        assert!(analyze_trajectory_text("{\"experiment\": \"x\"}", &cfg).is_err());
        assert!(analyze_trajectory_text("{\"experiment\": \"x\", \"runs\": [{}]}", &cfg).is_err());
        // Empty runs array is fine: nothing to gate.
        let rep = analyze_trajectory_text("{\"experiment\": \"x\", \"runs\": []}", &cfg).unwrap();
        assert!(rep.passed());
        assert_eq!(rep.runs, 0);
    }

    #[test]
    fn report_json_is_schema_stable() {
        let mut series = vec![1.0e-3; 10];
        series.push(1.0e-2);
        let doc = trajectory(&[("m_s", &series)]);
        let rep = analyze_trajectory(&doc, &GateConfig::default()).unwrap();
        let v = rep.to_json();
        assert_eq!(v["experiment"], "test");
        assert_eq!(v["passed"], false);
        assert_eq!(v["metrics"][0]["status"], "regressed");
        assert!(v["metrics"][0]["factor"].as_f64().unwrap() > 9.0);
        let reparsed = sg_json::parse(&v.to_string()).unwrap();
        assert_eq!(reparsed["runs"], 11u64);
    }
}
