//! Uniform dispatch over the five storage structures for the experiment
//! binaries: fill, sequential hierarchization, and sequential evaluation,
//! using for each structure the algorithm the paper pairs it with — the
//! iterative algorithms for the compact structure, the classic recursive
//! ones for the conventional structures.

use sg_baselines::{
    evaluate_recursive, hierarchize_recursive, EnhancedHashGrid, EnhancedMapGrid, PrefixTreeGrid,
    SparseGridStore, StdMapGrid, StoreKind,
};
use sg_core::evaluate::evaluate;
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::hierarchize;
use sg_core::level::GridSpec;

/// One of the five storage structures, uniformly driveable.
pub enum AnyStore {
    /// The compact structure (iterative algorithms).
    Compact(CompactGrid<f64>),
    /// Coordinate-keyed ordered map (recursive algorithms).
    StdMap(StdMapGrid<f64>),
    /// `gp2idx`-keyed ordered map (recursive algorithms).
    EnhMap(EnhancedMapGrid<f64>),
    /// `gp2idx`-keyed hash table (recursive algorithms).
    EnhHash(EnhancedHashGrid<f64>),
    /// Prefix tree (recursive algorithms).
    PrefixTree(PrefixTreeGrid<f64>),
}

impl AnyStore {
    /// Construct an empty store of the given kind.
    pub fn new(kind: StoreKind, spec: GridSpec) -> Self {
        match kind {
            StoreKind::Compact => AnyStore::Compact(CompactGrid::new(spec)),
            StoreKind::StdMap => AnyStore::StdMap(StdMapGrid::new(spec)),
            StoreKind::EnhancedMap => AnyStore::EnhMap(EnhancedMapGrid::new(spec)),
            StoreKind::EnhancedHash => AnyStore::EnhHash(EnhancedHashGrid::new(spec)),
            StoreKind::PrefixTree => AnyStore::PrefixTree(PrefixTreeGrid::new(spec)),
        }
    }

    /// The kind tag.
    pub fn kind(&self) -> StoreKind {
        match self {
            AnyStore::Compact(_) => StoreKind::Compact,
            AnyStore::StdMap(_) => StoreKind::StdMap,
            AnyStore::EnhMap(_) => StoreKind::EnhancedMap,
            AnyStore::EnhHash(_) => StoreKind::EnhancedHash,
            AnyStore::PrefixTree(_) => StoreKind::PrefixTree,
        }
    }

    /// Populate with nodal values of `f`.
    pub fn fill(&mut self, f: impl FnMut(&[f64]) -> f64) {
        match self {
            AnyStore::Compact(s) => s.fill_from(f),
            AnyStore::StdMap(s) => s.fill_from(f),
            AnyStore::EnhMap(s) => s.fill_from(f),
            AnyStore::EnhHash(s) => s.fill_from(f),
            AnyStore::PrefixTree(s) => s.fill_from(f),
        }
    }

    /// Sequential hierarchization with the paper's pairing: iterative
    /// Alg. 6 for the compact structure, recursive Alg. 1 for the rest.
    pub fn hierarchize_seq(&mut self) {
        match self {
            AnyStore::Compact(s) => hierarchize(s),
            AnyStore::StdMap(s) => hierarchize_recursive(s),
            AnyStore::EnhMap(s) => hierarchize_recursive(s),
            AnyStore::EnhHash(s) => hierarchize_recursive(s),
            AnyStore::PrefixTree(s) => hierarchize_recursive(s),
        }
    }

    /// Sequential evaluation at one point: iterative Alg. 7 for the
    /// compact structure, recursive Alg. 2 for the rest.
    pub fn evaluate_seq(&self, x: &[f64]) -> f64 {
        match self {
            AnyStore::Compact(s) => evaluate(s, x),
            AnyStore::StdMap(s) => evaluate_recursive(s, x),
            AnyStore::EnhMap(s) => evaluate_recursive(s, x),
            AnyStore::EnhHash(s) => evaluate_recursive(s, x),
            AnyStore::PrefixTree(s) => evaluate_recursive(s, x),
        }
    }

    /// Value at grid point `(l, i)`.
    pub fn get(&self, l: &[sg_core::level::Level], i: &[sg_core::level::Index]) -> f64 {
        match self {
            AnyStore::Compact(s) => s.get(l, i),
            AnyStore::StdMap(s) => SparseGridStore::get(s, l, i),
            AnyStore::EnhMap(s) => SparseGridStore::get(s, l, i),
            AnyStore::EnhHash(s) => SparseGridStore::get(s, l, i),
            AnyStore::PrefixTree(s) => SparseGridStore::get(s, l, i),
        }
    }

    /// Modelled/actual memory footprint.
    pub fn memory_bytes(&self) -> usize {
        match self {
            AnyStore::Compact(s) => SparseGridStore::memory_bytes(s),
            AnyStore::StdMap(s) => s.memory_bytes(),
            AnyStore::EnhMap(s) => s.memory_bytes(),
            AnyStore::EnhHash(s) => s.memory_bytes(),
            AnyStore::PrefixTree(s) => s.memory_bytes(),
        }
    }

    /// Snapshot the values into a compact grid (for cross-validation).
    pub fn to_compact(&self) -> CompactGrid<f64> {
        match self {
            AnyStore::Compact(s) => s.clone(),
            AnyStore::StdMap(s) => s.to_compact(),
            AnyStore::EnhMap(s) => s.to_compact(),
            AnyStore::EnhHash(s) => s.to_compact(),
            AnyStore::PrefixTree(s) => s.to_compact(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_core::functions::{halton_points, TestFunction};

    #[test]
    fn all_stores_agree_end_to_end() {
        let spec = GridSpec::new(3, 4);
        let f = TestFunction::Parabola;
        let mut reference: Option<CompactGrid<f64>> = None;
        for kind in StoreKind::ALL {
            let mut s = AnyStore::new(kind, spec);
            assert_eq!(s.kind(), kind);
            s.fill(|x| f.eval(x));
            s.hierarchize_seq();
            let snap = s.to_compact();
            if let Some(r) = &reference {
                assert!(
                    snap.max_abs_diff(r) < 1e-12,
                    "{:?} disagrees with compact",
                    kind
                );
            } else {
                reference = Some(snap);
            }
            // Evaluation agrees too.
            for x in halton_points(3, 5).chunks_exact(3) {
                let a = s.evaluate_seq(x);
                let b = evaluate(reference.as_ref().unwrap(), x);
                assert!((a - b).abs() < 1e-12, "{kind:?} at {x:?}");
            }
        }
    }

    #[test]
    fn memory_ordering_holds_on_real_instances() {
        let spec = GridSpec::new(4, 5);
        let sizes: Vec<(StoreKind, usize)> = StoreKind::ALL
            .iter()
            .map(|&k| {
                let mut s = AnyStore::new(k, spec);
                s.fill(|x| x[0]);
                (k, s.memory_bytes())
            })
            .collect();
        let get = |k: StoreKind| sizes.iter().find(|(a, _)| *a == k).unwrap().1;
        assert!(get(StoreKind::Compact) < get(StoreKind::PrefixTree));
        assert!(get(StoreKind::PrefixTree) < get(StoreKind::StdMap));
        assert!(get(StoreKind::EnhancedHash) < get(StoreKind::StdMap));
    }
}
