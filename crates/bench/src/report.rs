//! Aligned table printing and JSON experiment records.

use sg_json::{json, Value};
use std::io::Write;
use std::path::PathBuf;

/// A printable experiment table that can also be saved as JSON.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// JSON representation (`{title, headers, rows}`).
    pub fn to_json(&self) -> Value {
        json!({
            "title": self.title.clone(),
            "headers": self.headers.clone(),
            "rows": Value::Array(
                self.rows
                    .iter()
                    .map(|r| Value::from(r.clone()))
                    .collect(),
            ),
        })
    }
}

/// Write a JSON experiment record to `results/<name>.json` (directory
/// created on demand), stamping run provenance (git SHA, UTC timestamp,
/// thread count, features, machine model) into the record so every
/// figure output is attributable. Returns the path written.
pub fn save_json(name: &str, value: &Value) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut record = value.clone();
    if let Value::Object(_) = &record {
        record["provenance"] = sg_telemetry::provenance(&crate::trajectory::enabled_features());
    }
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", record.to_string_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["d", "value"]);
        t.add_row(vec!["5".into(), "1.25".into()]);
        t.add_row(vec!["10".into(), "200".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        let lines: Vec<&str> = r.lines().collect();
        // Header and rows share the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("x", &["a"]);
        t.add_row(vec!["1".into()]);
        let j = t.to_json();
        assert_eq!(j["title"], "x");
        assert_eq!(j["rows"][0][0], "1");
    }
}
