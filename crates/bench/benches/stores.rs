//! Random-access benchmarks across the five storage structures
//! (the measured counterpart of paper Table 1).

use sg_baselines::StoreKind;
use sg_bench::harness::Harness;
use sg_bench::AnyStore;
use sg_core::bijection::GridIndexer;
use sg_core::level::GridSpec;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("stores");

    {
        let mut group = h.group("store_random_get");
        group.sample_size(20);
        let spec = GridSpec::new(4, 8);
        let ix = GridIndexer::new(spec);
        let n = spec.num_points();

        // Deterministic shuffled access order, decoded up front.
        let mut order: Vec<u64> = (0..n).collect();
        let mut state = 0x2545F4914F6CDD1Du64;
        for k in 0..order.len() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % n) as usize;
            order.swap(k, j);
        }
        order.truncate(20_000);
        let points: Vec<(Vec<u8>, Vec<u32>)> = order
            .iter()
            .map(|&idx| {
                let mut l = vec![0u8; 4];
                let mut i = vec![0u32; 4];
                ix.idx2gp(idx, &mut l, &mut i);
                (l, i)
            })
            .collect();

        for kind in StoreKind::ALL {
            let mut store = AnyStore::new(kind, spec);
            store.fill(|x| x[0] - x[3]);
            group.bench(kind.label(), || {
                let mut acc = 0.0f64;
                for (l, i) in &points {
                    acc += store.get(black_box(l), black_box(i));
                }
                acc
            });
        }
    }

    {
        let mut group = h.group("store_fill");
        group.sample_size(10);
        let spec = GridSpec::new(4, 6);
        for kind in StoreKind::ALL {
            group.bench(kind.label(), || {
                let mut s = AnyStore::new(kind, spec);
                s.fill(|x| x[0]);
                black_box(s.memory_bytes())
            });
        }
    }

    h.finish();
}
