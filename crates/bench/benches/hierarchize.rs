//! Compression benchmarks: the iterative traversal vs the literal Alg. 6
//! (per-point `idx2gp`) vs the thread-parallel version, plus the
//! recursive classic on the conventional structures.

use sg_baselines::{hierarchize_recursive, StoreKind};
use sg_bench::harness::Harness;
use sg_bench::AnyStore;
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::{hierarchize, hierarchize_alg6_literal, hierarchize_parallel};
use sg_core::level::GridSpec;

fn sample(spec: GridSpec) -> CompactGrid<f64> {
    CompactGrid::from_fn(spec, |x| x.iter().map(|&v| v * (1.0 - v)).sum())
}

fn main() {
    let mut h = Harness::from_args("hierarchize");

    {
        let mut group = h.group("hierarchize_compact");
        group.sample_size(10);
        let spec = GridSpec::new(5, 7);
        let base = sample(spec);
        group.bench_with_setup("iterative", || base.clone(), |mut g| hierarchize(&mut g));
        group.bench_with_setup(
            "alg6_literal",
            || base.clone(),
            |mut g| hierarchize_alg6_literal(&mut g),
        );
        group.bench_with_setup(
            "parallel",
            || base.clone(),
            |mut g| hierarchize_parallel(&mut g),
        );
    }

    {
        let mut group = h.group("hierarchize_stores");
        group.sample_size(10);
        let spec = GridSpec::new(4, 5);
        for kind in StoreKind::ALL {
            group.bench_with_setup(
                kind.label(),
                || {
                    let mut s = AnyStore::new(kind, spec);
                    s.fill(|x| x[0] + x[1]);
                    s
                },
                |mut s| s.hierarchize_seq(),
            );
        }
    }

    {
        // The paper's starting point: the recursive classic also runs on
        // the compact structure; the iterative version wins via locality.
        let mut group = h.group("hierarchize_recursive_vs_iterative");
        group.sample_size(10);
        let spec = GridSpec::new(4, 6);
        let base = sample(spec);
        group.bench_with_setup(
            "recursive_alg1",
            || base.clone(),
            |mut g| hierarchize_recursive(&mut g),
        );
        group.bench_with_setup(
            "iterative_alg6",
            || base.clone(),
            |mut g| hierarchize(&mut g),
        );
    }

    {
        let mut group = h.group("dehierarchize");
        group.sample_size(10);
        let spec = GridSpec::new(5, 7);
        let mut base = sample(spec);
        hierarchize(&mut base);
        group.bench_with_setup(
            "sequential",
            || base.clone(),
            |mut g| sg_core::hierarchize::dehierarchize(&mut g),
        );
    }

    h.finish();
}
