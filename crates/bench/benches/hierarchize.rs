//! Compression benchmarks: the iterative traversal vs the literal Alg. 6
//! (per-point `idx2gp`) vs the rayon-parallel version, plus the recursive
//! classic on the conventional structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_baselines::{hierarchize_recursive, StoreKind};
use sg_bench::AnyStore;
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::{hierarchize, hierarchize_alg6_literal, hierarchize_parallel};
use sg_core::level::GridSpec;

fn sample(spec: GridSpec) -> CompactGrid<f64> {
    CompactGrid::from_fn(spec, |x| x.iter().map(|&v| v * (1.0 - v)).sum())
}

fn bench_compact_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchize_compact");
    group.sample_size(10);
    let spec = GridSpec::new(5, 7);
    let base = sample(spec);
    group.bench_function("iterative", |b| {
        b.iter_batched(
            || base.clone(),
            |mut g| hierarchize(&mut g),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("alg6_literal", |b| {
        b.iter_batched(
            || base.clone(),
            |mut g| hierarchize_alg6_literal(&mut g),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("parallel", |b| {
        b.iter_batched(
            || base.clone(),
            |mut g| hierarchize_parallel(&mut g),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchize_stores");
    group.sample_size(10);
    let spec = GridSpec::new(4, 5);
    for kind in StoreKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter_batched(
                || {
                    let mut s = AnyStore::new(kind, spec);
                    s.fill(|x| x[0] + x[1]);
                    s
                },
                |mut s| s.hierarchize_seq(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_recursive_vs_iterative_on_compact(c: &mut Criterion) {
    // The paper's starting point: the recursive classic also runs on the
    // compact structure; the iterative version wins through locality.
    let mut group = c.benchmark_group("hierarchize_recursive_vs_iterative");
    group.sample_size(10);
    let spec = GridSpec::new(4, 6);
    let base = sample(spec);
    group.bench_function("recursive_alg1", |b| {
        b.iter_batched(
            || base.clone(),
            |mut g| hierarchize_recursive(&mut g),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("iterative_alg6", |b| {
        b.iter_batched(
            || base.clone(),
            |mut g| hierarchize(&mut g),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_dehierarchize(c: &mut Criterion) {
    let mut group = c.benchmark_group("dehierarchize");
    group.sample_size(10);
    let spec = GridSpec::new(5, 7);
    let mut base = sample(spec);
    hierarchize(&mut base);
    group.bench_function("sequential", |b| {
        b.iter_batched(
            || base.clone(),
            |mut g| sg_core::hierarchize::dehierarchize(&mut g),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compact_variants,
    bench_stores,
    bench_recursive_vs_iterative_on_compact,
    bench_dehierarchize
);
criterion_main!(benches);
