//! Decompression benchmarks: single-point and batch evaluation, the
//! cache-blocking ablation of paper §4.3, and parallel batch throughput.

use sg_bench::harness::Harness;
use sg_core::evaluate::{
    evaluate, evaluate_batch, evaluate_batch_blocked, evaluate_batch_parallel,
};
use sg_core::functions::halton_points;
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::hierarchize;
use sg_core::level::GridSpec;
use std::hint::black_box;

fn surplus_grid(d: usize, levels: usize) -> CompactGrid<f64> {
    let mut g = CompactGrid::from_fn(GridSpec::new(d, levels), |x| {
        x.iter().map(|&v| 4.0 * v * (1.0 - v)).product()
    });
    hierarchize(&mut g);
    g
}

fn main() {
    let mut h = Harness::from_args("evaluate");

    {
        let mut group = h.group("evaluate_single");
        group.sample_size(30);
        for d in [3usize, 6, 10] {
            let g = surplus_grid(d, 6);
            let x = vec![0.37; d];
            group.bench(&format!("{d}"), || evaluate(&g, black_box(&x)));
        }
    }

    {
        // Paper §4.3: blocking over evaluation points keeps each subspace
        // cache-resident across the block.
        let mut group = h.group("evaluate_blocking");
        group.sample_size(10);
        let g = surplus_grid(5, 8);
        let xs = halton_points(5, 2000);
        group.throughput_elements(2000);
        group.bench("unblocked", || black_box(evaluate_batch(&g, &xs)));
        for block in [8usize, 64, 256] {
            group.bench(&format!("blocked/{block}"), || {
                black_box(evaluate_batch_blocked(&g, &xs, block))
            });
        }
    }

    {
        let mut group = h.group("evaluate_parallel");
        group.sample_size(10);
        let g = surplus_grid(5, 7);
        let xs = halton_points(5, 4000);
        group.throughput_elements(4000);
        group.bench("sequential_blocked", || {
            black_box(evaluate_batch_blocked(&g, &xs, 64))
        });
        group.bench("threaded", || {
            black_box(evaluate_batch_parallel(&g, &xs, 64))
        });
    }

    h.finish();
}
