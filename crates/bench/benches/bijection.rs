//! Microbenchmarks of the `gp2idx` machinery, including the paper's §5.3
//! ablation: binomials from the `binmat` lookup table vs recomputed on
//! the fly (paper: the on-the-fly variant makes hierarchization ≈4×
//! slower).

use sg_bench::harness::Harness;
use sg_core::bijection::{gp2idx_literal, GridIndexer};
use sg_core::iter::for_each_point;
use sg_core::level::GridSpec;
use std::hint::black_box;

/// Collect every grid point once so the benches iterate plain slices.
fn all_points(spec: &GridSpec) -> Vec<(Vec<u8>, Vec<u32>)> {
    let mut pts = Vec::with_capacity(spec.num_points() as usize);
    for_each_point(spec, |_, l, i| pts.push((l.to_vec(), i.to_vec())));
    pts
}

fn main() {
    let mut h = Harness::from_args("bijection");

    {
        let mut group = h.group("gp2idx");
        group.sample_size(20);
        for d in [3usize, 6, 10] {
            let spec = GridSpec::new(d, 6);
            let ix = GridIndexer::new(spec);
            let pts = all_points(&spec);
            group.bench(&format!("binmat_lookup/{d}"), || {
                let mut acc = 0u64;
                for (l, i) in &pts {
                    acc = acc.wrapping_add(ix.gp2idx(black_box(l), black_box(i)));
                }
                acc
            });
            group.bench(&format!("on_the_fly/{d}"), || {
                let mut acc = 0u64;
                for (l, i) in &pts {
                    acc = acc.wrapping_add(gp2idx_literal(&spec, black_box(l), black_box(i)));
                }
                acc
            });
        }
    }

    {
        let mut group = h.group("idx2gp");
        group.sample_size(20);
        for d in [3usize, 10] {
            let spec = GridSpec::new(d, 6);
            let ix = GridIndexer::new(spec);
            let n = spec.num_points();
            let mut l = vec![0u8; d];
            let mut i = vec![0u32; d];
            group.bench(&format!("{d}"), || {
                for idx in 0..n {
                    ix.idx2gp(black_box(idx), &mut l, &mut i);
                }
                (l[0], i[0])
            });
        }
    }

    {
        let mut group = h.group("next_level_iterator");
        group.sample_size(20);
        for d in [5usize, 10] {
            group.bench(&format!("{d}"), || {
                let mut count = 0u64;
                let mut l = vec![0u8; d];
                sg_core::iter::first_level(8, &mut l);
                loop {
                    count += 1;
                    if !sg_core::iter::next_level(black_box(&mut l)) {
                        break;
                    }
                }
                count
            });
        }
    }

    h.finish();
}
