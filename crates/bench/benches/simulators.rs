//! Throughput of the simulation substrates themselves — the cache
//! simulator and the GPU kernel simulator drive every figure harness, so
//! their speed bounds how large a grid the experiments can profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sg_baselines::StoreKind;
use sg_core::functions::halton_points;
use sg_core::grid::CompactGrid;
use sg_core::level::GridSpec;
use sg_gpu::{evaluate_gpu, hierarchize_gpu, GpuDevice, KernelConfig};
use sg_machine::{trace_hierarchization, CacheSim};
use std::hint::black_box;

fn bench_cache_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sim_accesses");
    group.sample_size(20);
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut sim = CacheSim::nehalem();
            for k in 0..N {
                sim.access(black_box(k * 8), 8);
            }
            sim.dram_lines()
        })
    });
    group.bench_function("scattered", |b| {
        b.iter(|| {
            let mut sim = CacheSim::nehalem();
            let mut x = 0x12345u64;
            for _ in 0..N {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                sim.access(black_box(x % (1 << 30)), 8);
            }
            sim.dram_lines()
        })
    });
    group.finish();
}

fn bench_traced_profiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_hierarchization");
    group.sample_size(10);
    for kind in [StoreKind::Compact, StoreKind::EnhancedMap] {
        let spec = GridSpec::new(4, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut sim = CacheSim::opteron_barcelona();
                    black_box(trace_hierarchization(kind, spec, &mut sim))
                })
            },
        );
    }
    group.finish();
}

fn bench_gpu_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_simulator");
    group.sample_size(10);
    let dev = GpuDevice::tesla_c1060();
    let cfg = KernelConfig::default();
    let spec = GridSpec::new(5, 6);
    let base: CompactGrid<f32> =
        CompactGrid::from_fn(spec, |x| x.iter().product::<f64>() as f32);
    group.throughput(Throughput::Elements(spec.num_points()));
    group.bench_function("hierarchize_kernel", |b| {
        b.iter_batched(
            || base.clone(),
            |mut g| black_box(hierarchize_gpu(&mut g, &dev, &cfg)),
            criterion::BatchSize::LargeInput,
        )
    });
    let mut g = base.clone();
    sg_core::hierarchize::hierarchize(&mut g);
    let xs = halton_points(5, 2000);
    group.throughput(Throughput::Elements(2000));
    group.bench_function("evaluate_kernel_2k_points", |b| {
        b.iter(|| black_box(evaluate_gpu(&g, &xs, &dev, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_cache_sim, bench_traced_profiles, bench_gpu_sim);
criterion_main!(benches);
