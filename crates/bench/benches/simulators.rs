//! Throughput of the simulation substrates themselves — the cache
//! simulator and the GPU kernel simulator drive every figure harness, so
//! their speed bounds how large a grid the experiments can profile.

use sg_baselines::StoreKind;
use sg_bench::harness::Harness;
use sg_core::functions::halton_points;
use sg_core::grid::CompactGrid;
use sg_core::level::GridSpec;
use sg_gpu::{evaluate_gpu, hierarchize_gpu, GpuDevice, KernelConfig};
use sg_machine::{trace_hierarchization, CacheSim};
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("simulators");

    {
        let mut group = h.group("cache_sim_accesses");
        group.sample_size(20);
        const N: u64 = 100_000;
        group.throughput_elements(N);
        group.bench("sequential", || {
            let mut sim = CacheSim::nehalem();
            for k in 0..N {
                sim.access(black_box(k * 8), 8);
            }
            sim.dram_lines()
        });
        group.bench("scattered", || {
            let mut sim = CacheSim::nehalem();
            let mut x = 0x12345u64;
            for _ in 0..N {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                sim.access(black_box(x % (1 << 30)), 8);
            }
            sim.dram_lines()
        });
    }

    {
        let mut group = h.group("trace_hierarchization");
        group.sample_size(10);
        for kind in [StoreKind::Compact, StoreKind::EnhancedMap] {
            let spec = GridSpec::new(4, 7);
            group.bench(kind.label(), || {
                let mut sim = CacheSim::opteron_barcelona();
                black_box(trace_hierarchization(kind, spec, &mut sim))
            });
        }
    }

    {
        let mut group = h.group("gpu_simulator");
        group.sample_size(10);
        let dev = GpuDevice::tesla_c1060();
        let cfg = KernelConfig::default();
        let spec = GridSpec::new(5, 6);
        let base: CompactGrid<f32> =
            CompactGrid::from_fn(spec, |x| x.iter().product::<f64>() as f32);
        group.throughput_elements(spec.num_points());
        group.bench_with_setup(
            "hierarchize_kernel",
            || base.clone(),
            |mut g| {
                black_box(hierarchize_gpu(&mut g, &dev, &cfg))
                    .counters
                    .bytes
            },
        );
        let mut g = base.clone();
        sg_core::hierarchize::hierarchize(&mut g);
        let xs = halton_points(5, 2000);
        group.throughput_elements(2000);
        group.bench("evaluate_kernel_2k_points", || {
            black_box(evaluate_gpu(&g, &xs, &dev, &cfg))
                .1
                .counters
                .bytes
        });
    }

    h.finish();
}
