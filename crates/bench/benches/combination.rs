//! Direct compact method vs the combination technique (paper §7) and vs
//! the adaptive hash-backed grid — the two representation trade-offs the
//! paper positions itself against.

use sg_adaptive::AdaptiveSparseGrid;
use sg_bench::harness::Harness;
use sg_combination::CombinationGrid;
use sg_core::evaluate::evaluate_batch_blocked;
use sg_core::functions::{halton_points, TestFunction};
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::hierarchize;
use sg_core::level::GridSpec;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("combination");

    {
        let mut group = h.group("combination_vs_direct_eval");
        group.sample_size(10);
        group.throughput_elements(1000);
        let f = TestFunction::Gaussian;
        for d in [3usize, 5] {
            let spec = GridSpec::new(d, 6);
            let mut direct = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
            hierarchize(&mut direct);
            let comb = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));
            let xs = halton_points(d, 1000);
            group.bench(&format!("direct/{d}"), || {
                black_box(evaluate_batch_blocked(&direct, &xs, 64))
            });
            group.bench(&format!("combination/{d}"), || {
                let mut acc = 0.0;
                for x in xs.chunks_exact(d) {
                    acc += comb.evaluate(black_box(x));
                }
                acc
            });
        }
    }

    {
        // Construction: sampling+hierarchization (direct) vs sampling all
        // component grids (combination, no hierarchization needed).
        let mut group = h.group("build_cost");
        group.sample_size(10);
        let f = TestFunction::Parabola;
        let spec = GridSpec::new(4, 6);
        group.bench("direct_sample_hierarchize", || {
            let mut g = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
            hierarchize(&mut g);
            black_box(g.len())
        });
        group.bench("combination_sample_components", || {
            let g = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));
            black_box(g.total_points())
        });
    }

    {
        let mut group = h.group("adaptive_vs_regular_eval");
        group.sample_size(10);
        group.throughput_elements(500);
        let f = |x: &[f64]| (-200.0 * ((x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2))).exp();
        let mut adaptive = AdaptiveSparseGrid::new(2);
        adaptive.refine_by_surplus(&f, 1e-4, 2000, 12);
        let spec = GridSpec::new(2, 9);
        let mut regular = CompactGrid::<f64>::from_fn(spec, f);
        hierarchize(&mut regular);
        let xs = halton_points(2, 500);
        group.bench("adaptive_hash", || {
            let mut acc = 0.0;
            for x in xs.chunks_exact(2) {
                acc += adaptive.evaluate(black_box(x));
            }
            acc
        });
        group.bench("regular_compact", || {
            black_box(evaluate_batch_blocked(&regular, &xs, 64))
        });
    }

    h.finish();
}
