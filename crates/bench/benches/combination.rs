//! Direct compact method vs the combination technique (paper §7) and vs
//! the adaptive hash-backed grid — the two representation trade-offs the
//! paper positions itself against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sg_adaptive::AdaptiveSparseGrid;
use sg_combination::CombinationGrid;
use sg_core::evaluate::evaluate_batch_blocked;
use sg_core::functions::{halton_points, TestFunction};
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::hierarchize;
use sg_core::level::GridSpec;
use std::hint::black_box;

fn bench_combination_vs_direct_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("combination_vs_direct_eval");
    group.sample_size(10);
    let f = TestFunction::Gaussian;
    for d in [3usize, 5] {
        let spec = GridSpec::new(d, 6);
        let mut direct = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
        hierarchize(&mut direct);
        let comb = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));
        let xs = halton_points(d, 1000);
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::new("direct", d), &d, |b, _| {
            b.iter(|| black_box(evaluate_batch_blocked(&direct, &xs, 64)))
        });
        group.bench_with_input(BenchmarkId::new("combination", d), &d, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for x in xs.chunks_exact(d) {
                    acc += comb.evaluate(black_box(x));
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_build_cost(c: &mut Criterion) {
    // Construction: sampling+hierarchization (direct) vs sampling all
    // component grids (combination, no hierarchization needed).
    let mut group = c.benchmark_group("build_cost");
    group.sample_size(10);
    let f = TestFunction::Parabola;
    let spec = GridSpec::new(4, 6);
    group.bench_function("direct_sample_hierarchize", |b| {
        b.iter(|| {
            let mut g = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
            hierarchize(&mut g);
            black_box(g.len())
        })
    });
    group.bench_function("combination_sample_components", |b| {
        b.iter(|| {
            let g = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));
            black_box(g.total_points())
        })
    });
    group.finish();
}

fn bench_adaptive_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_vs_regular_eval");
    group.sample_size(10);
    let f = |x: &[f64]| (-200.0 * ((x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2))).exp();
    let mut adaptive = AdaptiveSparseGrid::new(2);
    adaptive.refine_by_surplus(&f, 1e-4, 2000, 12);
    let spec = GridSpec::new(2, 9);
    let mut regular = CompactGrid::<f64>::from_fn(spec, f);
    hierarchize(&mut regular);
    let xs = halton_points(2, 500);
    group.throughput(Throughput::Elements(500));
    group.bench_function("adaptive_hash", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for x in xs.chunks_exact(2) {
                acc += adaptive.evaluate(black_box(x));
            }
            acc
        })
    });
    group.bench_function("regular_compact", |b| {
        b.iter(|| black_box(evaluate_batch_blocked(&regular, &xs, 64)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_combination_vs_direct_eval,
    bench_build_cost,
    bench_adaptive_eval
);
criterion_main!(benches);
