//! Integration tests for the BENCH trajectory lifecycle: append-with-cap
//! retention, provenance presence, and how the regression gate treats
//! the files `record_run_in` actually writes (including short
//! histories, which must pass).

use std::path::PathBuf;

use sg_bench::gate::{analyze_trajectory_text, GateConfig, GateStatus};
use sg_bench::trajectory::{record_run_in, MetricStats, MAX_RUNS};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sg-bench-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn metrics(p50: f64) -> Vec<(String, MetricStats)> {
    vec![(
        "d5/compact/hierarchize_s".to_string(),
        MetricStats::from_samples(&[p50]).unwrap(),
    )]
}

#[test]
fn append_caps_at_max_runs_and_keeps_newest() {
    let dir = temp_dir("cap");
    // Write MAX_RUNS + 6 runs with a recognizable ramp of p50 values.
    for i in 0..MAX_RUNS + 6 {
        record_run_in(&dir, "captest", &metrics(1.0e-3 + i as f64 * 1.0e-6)).unwrap();
    }
    let text = std::fs::read_to_string(dir.join("BENCH_captest.json")).unwrap();
    let doc = sg_json::parse(&text).unwrap();
    let runs = doc["runs"].as_array().unwrap();
    assert_eq!(runs.len(), MAX_RUNS);
    // The oldest 6 were drained: the first surviving run is run #6.
    let first = runs[0]["metrics"]["d5/compact/hierarchize_s"]["p50_s"]
        .as_f64()
        .unwrap();
    assert!((first - (1.0e-3 + 6.0e-6)).abs() < 1e-12);
    let last = runs[MAX_RUNS - 1]["metrics"]["d5/compact/hierarchize_s"]["p50_s"]
        .as_f64()
        .unwrap();
    assert!((last - (1.0e-3 + (MAX_RUNS + 5) as f64 * 1.0e-6)).abs() < 1e-12);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_appended_run_carries_provenance() {
    let dir = temp_dir("prov");
    for _ in 0..3 {
        record_run_in(&dir, "provtest", &metrics(2.5e-3)).unwrap();
    }
    let text = std::fs::read_to_string(dir.join("BENCH_provtest.json")).unwrap();
    let doc = sg_json::parse(&text).unwrap();
    assert_eq!(doc["experiment"], "provtest");
    for run in doc["runs"].as_array().unwrap() {
        let prov = &run["provenance"];
        assert!(
            prov["timestamp_utc"].as_str().is_some(),
            "missing timestamp"
        );
        assert!(prov["threads"].as_f64().is_some(), "missing threads");
        assert!(prov.get("git_sha").is_some(), "missing git_sha");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gate_passes_on_short_histories_written_by_record_run() {
    let dir = temp_dir("short");
    let cfg = GateConfig::default();
    // 1..4 runs: always Insufficient, always passes — even when the
    // newest run is absurdly slow.
    for i in 0..cfg.min_runs - 1 {
        let p50 = if i == cfg.min_runs - 2 { 10.0 } else { 1.0e-3 };
        record_run_in(&dir, "shorttest", &metrics(p50)).unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_shorttest.json")).unwrap();
        let rep = analyze_trajectory_text(&text, &cfg).unwrap();
        assert!(rep.passed(), "run {} should pass", i + 1);
        assert!(rep
            .metrics
            .iter()
            .all(|m| matches!(m.status, GateStatus::Insufficient)));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gate_catches_regression_in_recorded_trajectory() {
    let dir = temp_dir("regress");
    let cfg = GateConfig::default();
    for _ in 0..8 {
        record_run_in(&dir, "regresstest", &metrics(1.0e-3)).unwrap();
    }
    let path = dir.join("BENCH_regresstest.json");
    let rep = analyze_trajectory_text(&std::fs::read_to_string(&path).unwrap(), &cfg).unwrap();
    assert!(rep.passed(), "clean trajectory must pass");

    record_run_in(&dir, "regresstest", &metrics(1.0e-2)).unwrap(); // 10×
    let rep = analyze_trajectory_text(&std::fs::read_to_string(&path).unwrap(), &cfg).unwrap();
    assert!(!rep.passed());
    let m = rep.regressions().next().unwrap();
    assert!(matches!(m.status, GateStatus::Regressed { factor, .. } if factor > 9.0));
    let _ = std::fs::remove_dir_all(&dir);
}
