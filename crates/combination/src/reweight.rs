//! Coefficient re-weighting over a surviving downset — the combination
//! analogue of `sg-io`'s `DegradedGrid`.
//!
//! For *any* downward-closed index set `I` (a downset: `l ∈ I` and
//! `m ≤ l` componentwise imply `m ∈ I`), the general combination
//! coefficients are given by inclusion–exclusion over upward unit
//! offsets,
//!
//! ```text
//! c_l = Σ_{z ∈ {0,1}^d, l+z ∈ I} (−1)^{|z|₁}
//! ```
//!
//! For the classical downset `I = {l : |l|₁ ≤ n}` this reproduces the
//! textbook `(−1)^q·C(d−1,q)` diagonal coefficients, and for every
//! downset containing the origin the coefficients telescope to
//! `Σ c_l = 1`, so constants are always reproduced exactly. When
//! component grids are lost, the executor shrinks the downset below the
//! casualties and re-solves — the fault-tolerant combination technique's
//! standard recovery move (cf. Harding/Hegland FTCT; Issue 9).

use sg_core::level::Level;
use std::collections::{BTreeMap, BTreeSet};

/// Largest dimensionality the solver accepts: the stencil enumerates
/// `2^d` unit offsets per index, so this is a safety rail, not a real
/// limit (combination schemes live at d ≤ 10 or so).
pub const MAX_REWEIGHT_DIM: usize = 24;

/// General combination coefficients of a downset: for each index in
/// `downset`, the inclusion–exclusion count over its upward unit
/// neighbourhood. Indices are returned in the iteration order of
/// `downset` (coefficients of indices outside any upward closure come
/// out zero and are *kept* so callers can see the full table).
///
/// # Panics
/// If `downset` is empty, mixes dimensionalities, or `d > MAX_REWEIGHT_DIM`.
pub fn downset_coefficients(downset: &[Vec<Level>]) -> Vec<i64> {
    assert!(!downset.is_empty(), "downset must be non-empty");
    let d = downset[0].len();
    assert!(
        d > 0 && d <= MAX_REWEIGHT_DIM,
        "dimensionality {d} out of range"
    );
    let members: BTreeSet<&[Level]> = downset.iter().map(|l| l.as_slice()).collect();
    let mut probe = vec![0 as Level; d];
    downset
        .iter()
        .map(|l| {
            assert_eq!(l.len(), d, "mixed dimensionalities in downset");
            let mut c = 0i64;
            for z in 0..(1u32 << d) {
                probe.copy_from_slice(l);
                for t in 0..d {
                    probe[t] += ((z >> t) & 1) as Level;
                }
                if members.contains(probe.as_slice()) {
                    c += if z.count_ones() % 2 == 0 { 1 } else { -1 };
                }
            }
            c
        })
        .collect()
}

/// A re-weighting solution: the adjusted scheme over the surviving
/// downset plus the rigorous error budget of the adjustment.
#[derive(Debug, Clone)]
pub struct ReweightPlan {
    /// Adjusted `(coefficient, level vector)` pairs with non-zero
    /// coefficients — every listed component is available.
    pub coefficients: Vec<(i64, Vec<Level>)>,
    /// Level vectors excluded from the original scheme's support.
    pub dropped: Vec<Vec<Level>>,
    /// Rigorous bound on `|u_I(x) − u_{I′}(x)|` for every `x`:
    /// `Σ_l |c_l − c′_l| · M_l` where `M_l` is the component's max-abs
    /// nodal value (each multilinear component interpolant satisfies
    /// `|u_l(x)| ≤ M_l`).
    pub error_bound: f64,
}

/// Solve the coefficient adjustment after losing components.
///
/// * `scheme` — the original `(coefficient, level)` pairs (coefficient 0
///   entries, e.g. pre-computed spare diagonals, are allowed and widen
///   the set of usable survivors).
/// * `full_downset` — the complete downset `I` the original scheme's
///   coefficients were derived from (`{l : |l|₁ ≤ n}` for the classical
///   scheme).
/// * `available` — level vectors whose nodal values survived.
/// * `max_abs` — per-component max-abs nodal value, indexed like
///   `scheme`; used for the error bound.
///
/// The surviving downset starts as `I` minus the upward closure of every
/// unavailable scheme index and iteratively shrinks below any index the
/// re-solved coefficients need but no survivor provides. Returns `Err`
/// when no non-empty survivable downset exists.
pub fn solve_reweight(
    scheme: &[(i64, Vec<Level>)],
    full_downset: &[Vec<Level>],
    available: &BTreeSet<Vec<Level>>,
    max_abs: &BTreeMap<Vec<Level>, f64>,
) -> Result<ReweightPlan, String> {
    let mut downset: BTreeSet<Vec<Level>> = full_downset.iter().cloned().collect();
    // Remove the upward closure of every scheme index that is gone; the
    // remainder of a downset minus an up-set is still a downset.
    for (_, l) in scheme {
        if !available.contains(l) {
            downset.retain(|m| !dominates(m, l));
        }
    }
    let plan_coefficients = loop {
        if downset.is_empty() {
            return Err("no surviving downset: every candidate component is lost".into());
        }
        let ordered: Vec<Vec<Level>> = downset.iter().cloned().collect();
        let coefs = downset_coefficients(&ordered);
        let missing: Vec<&Vec<Level>> = ordered
            .iter()
            .zip(&coefs)
            .filter(|(l, &c)| c != 0 && !available.contains(*l))
            .map(|(l, _)| l)
            .collect();
        if missing.is_empty() {
            break ordered
                .into_iter()
                .zip(coefs)
                .filter(|(_, c)| *c != 0)
                .map(|(l, c)| (c, l))
                .collect::<Vec<_>>();
        }
        // Shrink below every index the adjustment needs but nobody has.
        let missing: Vec<Vec<Level>> = missing.into_iter().cloned().collect();
        for l in &missing {
            downset.retain(|m| !dominates(m, l));
        }
    };
    // Error budget: Σ |c_l − c′_l| · M_l over the union of supports.
    let adjusted: BTreeMap<&[Level], i64> = plan_coefficients
        .iter()
        .map(|(c, l)| (l.as_slice(), *c))
        .collect();
    let original: BTreeMap<&[Level], i64> =
        scheme.iter().map(|(c, l)| (l.as_slice(), *c)).collect();
    let mut error_bound = 0.0f64;
    let mut dropped = Vec::new();
    let mut support: BTreeSet<&[Level]> = original.keys().copied().collect();
    support.extend(adjusted.keys().copied());
    for l in support {
        let before = original.get(l).copied().unwrap_or(0);
        let after = adjusted.get(l).copied().unwrap_or(0);
        if before != after {
            let m = max_abs
                .get(l)
                .copied()
                .ok_or_else(|| format!("no max-abs metadata for adjusted component {l:?}"))?;
            error_bound += (before - after).unsigned_abs() as f64 * m;
        }
        if before != 0 && after == 0 {
            dropped.push(l.to_vec());
        }
    }
    Ok(ReweightPlan {
        coefficients: plan_coefficients,
        dropped,
        error_bound,
    })
}

/// True when `m ≥ l` componentwise (`m` lies in the upward closure of `l`).
fn dominates(m: &[Level], l: &[Level]) -> bool {
    m.iter().zip(l).all(|(a, b)| a >= b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CombinationGrid;
    use sg_core::iter::for_each_level;
    use sg_core::level::GridSpec;

    fn classical_downset(d: usize, n: usize) -> Vec<Vec<Level>> {
        let mut out = Vec::new();
        for s in 0..=n {
            for_each_level(d, s, |l| out.push(l.to_vec()));
        }
        out
    }

    #[test]
    fn classical_downset_reproduces_scheme_coefficients() {
        for d in 1..=4usize {
            for levels in 1..=5usize {
                let spec = GridSpec::new(d, levels);
                let downset = classical_downset(d, spec.max_sum());
                let coefs = downset_coefficients(&downset);
                let scheme: BTreeMap<Vec<Level>, i64> = CombinationGrid::<f64>::scheme(spec)
                    .into_iter()
                    .map(|(c, l)| (l, c))
                    .collect();
                for (l, c) in downset.iter().zip(&coefs) {
                    assert_eq!(
                        scheme.get(l).copied().unwrap_or(0),
                        *c,
                        "d={d} L={levels} l={l:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn any_downset_sums_to_one() {
        // Constants must be reproduced by every downset containing the
        // origin, not just the classical one.
        let staircase = vec![vec![0, 0], vec![1, 0], vec![2, 0], vec![0, 1], vec![1, 1]];
        assert_eq!(downset_coefficients(&staircase).iter().sum::<i64>(), 1);
        let origin_only = vec![vec![0, 0, 0]];
        assert_eq!(downset_coefficients(&origin_only), vec![1]);
    }

    #[test]
    fn losing_a_component_shifts_weight_downward() {
        // d=2, n=2: lose (1,1). The survivable downset excludes the
        // upward closure of (1,1); the adjustment must only use
        // survivors and still sum to 1.
        let spec = GridSpec::new(2, 3);
        let scheme = CombinationGrid::<f64>::scheme(spec);
        let downset = classical_downset(2, spec.max_sum());
        let mut available: BTreeSet<Vec<Level>> = scheme.iter().map(|(_, l)| l.clone()).collect();
        available.remove(&vec![1 as Level, 1 as Level]);
        // Also offer the spare (0,0) the executor pre-computes.
        available.insert(vec![0, 0]);
        let max_abs: BTreeMap<Vec<Level>, f64> = downset.iter().map(|l| (l.clone(), 1.0)).collect();
        let plan = solve_reweight(&scheme, &downset, &available, &max_abs).unwrap();
        assert_eq!(plan.coefficients.iter().map(|(c, _)| c).sum::<i64>(), 1);
        for (_, l) in &plan.coefficients {
            assert!(available.contains(l), "plan uses unavailable {l:?}");
        }
        assert!(plan.dropped.contains(&vec![1, 1]));
        assert!(plan.error_bound > 0.0);
    }

    #[test]
    fn losing_everything_is_an_error() {
        let spec = GridSpec::new(2, 2);
        let scheme = CombinationGrid::<f64>::scheme(spec);
        let downset = classical_downset(2, spec.max_sum());
        let available = BTreeSet::new();
        let max_abs = BTreeMap::new();
        assert!(solve_reweight(&scheme, &downset, &available, &max_abs).is_err());
    }
}
