#![allow(clippy::needless_range_loop)] // lockstep indexing over parallel arrays reads clearer in numeric kernels
#![warn(missing_docs)]

//! # sg-combination — the combination technique
//!
//! The classical alternative to the paper's *direct* sparse grid method
//! (paper §7, related work): approximate the sparse grid interpolant by
//! an inclusion–exclusion superposition of interpolants on small
//! *anisotropic full grids*,
//!
//! ```text
//! u_n^c = Σ_{q=0}^{d−1} (−1)^q · C(d−1, q) · Σ_{|l|₁ = n−q} u_l
//! ```
//!
//! (levels zero-based, `n = L−1` the grid's largest level sum). The
//! component solves parallelize trivially and vectorize well — but "grid
//! points and corresponding function values have to be replicated across
//! multiple full grids. Thus, higher memory requirements have to be met"
//! (paper §7). This crate makes both sides measurable, and since the
//! combination identity is *exact for interpolation*, it doubles as an
//! independent cross-validation of the direct implementation in
//! `sg-core`.

/// Statement/item gate for instrumentation: compiled verbatim with the
/// `telemetry` feature, compiled away without it (see `sg_core`'s twin).
#[cfg(feature = "telemetry")]
macro_rules! tel {
    ($($t:tt)*) => { $($t)* };
}
#[cfg(not(feature = "telemetry"))]
macro_rules! tel {
    ($($t:tt)*) => {};
}

pub mod aniso;
pub mod executor;
pub mod reweight;

pub use aniso::AnisoFullGrid;
pub use executor::{
    CombinationExecutor, ExecutorConfig, ExecutorRun, InjectedFaults, RecoveryPolicy, RunOutcome,
};
pub use reweight::{downset_coefficients, solve_reweight, ReweightPlan};

use sg_core::combinatorics::binomial;
use sg_core::iter::for_each_level;
use sg_core::level::{GridSpec, Level};
use sg_core::real::Real;

/// One component grid with its combination coefficient.
#[derive(Debug, Clone)]
pub struct Component<T> {
    /// Inclusion–exclusion coefficient `(−1)^q · C(d−1, q)`.
    pub coefficient: i64,
    /// The anisotropic full grid carrying the samples.
    pub grid: AnisoFullGrid<T>,
}

/// A sparse grid function represented via the combination technique.
#[derive(Debug, Clone)]
pub struct CombinationGrid<T> {
    spec: GridSpec,
    components: Vec<Component<T>>,
}

impl<T: Real> CombinationGrid<T> {
    /// The level vectors and coefficients of the combination for a grid
    /// shape, without sampling anything.
    pub fn scheme(spec: GridSpec) -> Vec<(i64, Vec<Level>)> {
        let d = spec.dim();
        let n = spec.max_sum();
        let mut out = Vec::new();
        for q in 0..=(d - 1).min(n) {
            let coef = binomial((d - 1) as u64, q as u64) as i64 * if q % 2 == 0 { 1 } else { -1 };
            for_each_level(d, n - q, |l| out.push((coef, l.to_vec())));
        }
        out
    }

    /// Sample `f` on every component grid (in parallel over components).
    pub fn from_fn(spec: GridSpec, f: impl Fn(&[f64]) -> T + Sync) -> Self {
        let scheme = Self::scheme(spec);
        let components = sg_par::par_map(&scheme, |(coefficient, levels)| Component {
            coefficient: *coefficient,
            grid: AnisoFullGrid::from_fn(levels, &f),
        });
        Self { spec, components }
    }

    /// Assemble a combination from explicit components (e.g. recovered
    /// checkpoint payloads or a re-weighted scheme). The component order
    /// is preserved — evaluation sums in component order, so two grids
    /// with identical components in identical order evaluate bitwise
    /// identically.
    pub fn from_components(spec: GridSpec, components: Vec<Component<T>>) -> Self {
        for c in &components {
            assert_eq!(
                c.grid.levels().len(),
                spec.dim(),
                "component dimensionality mismatch"
            );
        }
        Self { spec, components }
    }

    /// Grid shape this combination represents.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// The component grids.
    pub fn components(&self) -> &[Component<T>] {
        &self.components
    }

    /// Evaluate the combined interpolant at `x ∈ [0,1]^d`.
    pub fn evaluate(&self, x: &[f64]) -> T {
        let acc: f64 = self
            .components
            .iter()
            .map(|c| c.coefficient as f64 * c.grid.interpolate(x))
            .sum();
        T::from_f64(acc)
    }

    /// Batch evaluation, parallel over query points.
    pub fn evaluate_batch_parallel(&self, xs: &[f64]) -> Vec<T> {
        let d = self.spec.dim();
        assert_eq!(xs.len() % d, 0, "flat point array length must be k·d");
        let n = xs.len() / d;
        sg_par::par_map_indexed(n, |k| self.evaluate(&xs[k * d..(k + 1) * d]))
    }

    /// Total stored values across all components — with the replication
    /// the paper criticizes: strictly more than the direct sparse grid's
    /// point count.
    pub fn total_points(&self) -> u64 {
        self.components.iter().map(|c| c.grid.len() as u64).sum()
    }

    /// Replication factor over the direct representation.
    pub fn replication_factor(&self) -> f64 {
        self.total_points() as f64 / self.spec.num_points() as f64
    }

    /// Bytes held by all component grids.
    pub fn memory_bytes(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.grid.memory_bytes())
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_core::evaluate::evaluate;
    use sg_core::functions::{halton_points, TestFunction};
    use sg_core::grid::CompactGrid;
    use sg_core::hierarchize::hierarchize;

    #[test]
    fn scheme_coefficients_sum_to_one() {
        // Inclusion–exclusion must reproduce constants: Σ coef = 1 for
        // any d, L (each component reproduces a constant function).
        for d in 1..=5 {
            for levels in 1..=5 {
                let spec = GridSpec::new(d, levels);
                let total: i64 = CombinationGrid::<f64>::scheme(spec)
                    .iter()
                    .map(|(c, _)| *c)
                    .sum();
                assert_eq!(total, 1, "d={d} levels={levels}");
            }
        }
    }

    #[test]
    fn scheme_degenerate_downset_d1() {
        // d = 1: a single diagonal (q only reaches 0), one component per
        // level sum — the downset is a chain and the combination is the
        // full grid itself. Coefficient sum pinned to 1.
        for levels in 1..=6 {
            let spec = GridSpec::new(1, levels);
            let scheme = CombinationGrid::<f64>::scheme(spec);
            assert_eq!(scheme.len(), 1, "levels={levels}");
            assert_eq!(scheme[0].0, 1, "levels={levels}");
            assert_eq!(scheme[0].1, vec![spec.max_sum() as Level]);
        }
    }

    #[test]
    fn scheme_degenerate_downset_n0() {
        // n = 0 (refinement level 1): the downset is the origin alone in
        // every dimension — q is clamped by `min(n)`, exactly one
        // component, coefficient exactly 1.
        for d in 1..=6 {
            let spec = GridSpec::new(d, 1);
            let scheme = CombinationGrid::<f64>::scheme(spec);
            assert_eq!(scheme.len(), 1, "d={d}");
            assert_eq!(scheme[0].0, 1, "d={d}");
            assert_eq!(scheme[0].1, vec![0 as Level; d]);
            let total: i64 = scheme.iter().map(|(c, _)| *c).sum();
            assert_eq!(total, 1, "d={d}");
        }
    }

    #[test]
    fn scheme_component_counts() {
        // q-th diagonal has S_{n−q}^d components.
        let spec = GridSpec::new(3, 4);
        let scheme = CombinationGrid::<f64>::scheme(spec);
        let on = |coef: i64| scheme.iter().filter(|(c, _)| *c == coef).count() as u64;
        // q=0: coef +1 (10 components), q=1: −2 (6), q=2: +1 (3).
        assert_eq!(
            on(1),
            sg_core::combinatorics::subspace_count(3, 3)
                + sg_core::combinatorics::subspace_count(3, 1)
        );
        assert_eq!(on(-2), sg_core::combinatorics::subspace_count(3, 2));
    }

    #[test]
    fn combination_equals_direct_sparse_interpolant() {
        // The combination identity is exact for interpolation: the
        // combined interpolant IS the sparse grid interpolant.
        let f = TestFunction::Gaussian;
        for (d, levels) in [(1usize, 5usize), (2, 4), (3, 4), (4, 3)] {
            let spec = GridSpec::new(d, levels);
            let comb = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));
            let mut direct = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
            hierarchize(&mut direct);
            for x in halton_points(d, 60).chunks_exact(d) {
                let a = comb.evaluate(x);
                let b = evaluate(&direct, x);
                assert!(
                    (a - b).abs() < 1e-11,
                    "d={d} levels={levels} x={x:?}: combination {a} vs direct {b}"
                );
            }
        }
    }

    #[test]
    fn one_dimensional_combination_is_the_full_grid() {
        let spec = GridSpec::new(1, 4);
        let comb = CombinationGrid::<f64>::from_fn(spec, |x| x[0] * (1.0 - x[0]));
        assert_eq!(comb.components().len(), 1);
        assert_eq!(comb.components()[0].coefficient, 1);
        assert_eq!(comb.total_points(), spec.num_points());
    }

    #[test]
    fn replication_exceeds_direct_storage() {
        // The paper's criticism quantified: the combination technique
        // stores strictly more values than the direct representation,
        // increasingly so in higher dimensions.
        let r3 =
            CombinationGrid::<f64>::from_fn(GridSpec::new(3, 5), |x| x[0]).replication_factor();
        let r5 =
            CombinationGrid::<f64>::from_fn(GridSpec::new(5, 5), |x| x[0]).replication_factor();
        assert!(r3 > 1.0, "replication {r3}");
        assert!(r5 > r3, "replication should grow with d: {r3} → {r5}");
    }

    #[test]
    fn batch_matches_single() {
        let spec = GridSpec::new(3, 3);
        let comb = CombinationGrid::<f64>::from_fn(spec, |x| x.iter().product());
        let xs = halton_points(3, 30);
        let batch = comb.evaluate_batch_parallel(&xs);
        for (x, &v) in xs.chunks_exact(3).zip(&batch) {
            assert_eq!(comb.evaluate(x), v);
        }
    }

    #[test]
    fn exact_at_sparse_grid_points() {
        let f = TestFunction::Parabola;
        let spec = GridSpec::new(2, 4);
        let comb = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));
        sg_core::iter::for_each_point(&spec, |_, l, i| {
            let x: Vec<f64> = l
                .iter()
                .zip(i)
                .map(|(&lt, &it)| sg_core::level::coordinate(lt, it))
                .collect();
            let got = comb.evaluate(&x);
            assert!((got - f.eval(&x)).abs() < 1e-12, "x={x:?}");
        });
    }
}
