//! Anisotropic full grids — the component grids of the combination
//! technique.
//!
//! An anisotropic grid of level vector `l` (zero-based, paper convention)
//! has `2^{l_t+1} − 1` interior points in dimension `t` at coordinates
//! `k · 2^{−(l_t+1)}`. Being regular full grids they are trivially
//! parallel and vectorizable — the very property the combination
//! technique trades memory for (paper §7).

use sg_core::level::Level;
use sg_core::real::Real;

/// Dense anisotropic interior grid on `[0,1]^d` with zero boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct AnisoFullGrid<T> {
    levels: Vec<Level>,
    per_dim: Vec<usize>,
    values: Vec<T>,
}

impl<T: Real> AnisoFullGrid<T> {
    /// Number of interior points of an anisotropic grid with the given
    /// zero-based level vector; `None` on overflow.
    pub fn point_count(levels: &[Level]) -> Option<u64> {
        levels
            .iter()
            .try_fold(1u64, |acc, &l| acc.checked_mul((1u64 << (l + 1)) - 1))
    }

    /// Zero-filled grid.
    ///
    /// # Panics
    /// If the grid exceeds 2³² points.
    pub fn new(levels: &[Level]) -> Self {
        assert!(!levels.is_empty());
        let total = Self::point_count(levels)
            .filter(|&t| t < (1 << 32))
            .expect("anisotropic grid too large to materialize");
        Self {
            per_dim: levels.iter().map(|&l| (1usize << (l + 1)) - 1).collect(),
            levels: levels.to_vec(),
            values: vec![T::ZERO; total as usize],
        }
    }

    /// Sample `f` at every interior point.
    pub fn from_fn(levels: &[Level], mut f: impl FnMut(&[f64]) -> T) -> Self {
        let mut g = Self::new(levels);
        let d = g.levels.len();
        let mut x = vec![0.0f64; d];
        let mut multi = vec![0usize; d];
        for flat in 0..g.values.len() {
            g.decode(flat, &mut multi);
            for t in 0..d {
                x[t] = (multi[t] + 1) as f64 / (g.per_dim[t] + 1) as f64;
            }
            g.values[flat] = f(&x);
        }
        g
    }

    /// Parallel sampling.
    pub fn from_fn_parallel(levels: &[Level], f: impl Fn(&[f64]) -> T + Sync) -> Self {
        let mut g = Self::new(levels);
        let d = g.levels.len();
        let per_dim = g.per_dim.clone();
        const CHUNK: usize = 1024;
        let per_dim = &per_dim;
        sg_par::par_chunks_mut(&mut g.values, CHUNK, |ci, chunk| {
            let mut multi = vec![0usize; d];
            let mut x = vec![0.0f64; d];
            let base = ci * CHUNK;
            for (off, v) in chunk.iter_mut().enumerate() {
                let mut rem = base + off;
                for t in (0..d).rev() {
                    multi[t] = rem % per_dim[t];
                    rem /= per_dim[t];
                }
                for t in 0..d {
                    x[t] = (multi[t] + 1) as f64 / (per_dim[t] + 1) as f64;
                }
                *v = f(&x);
            }
        });
        g
    }

    /// Rebuild a grid from a previously stored value array (e.g. a
    /// checkpoint payload). The values must be in the same row-major
    /// order [`Self::from_fn`] samples in.
    ///
    /// # Panics
    /// If `values.len()` does not match the point count of `levels`.
    pub fn from_values(levels: &[Level], values: Vec<T>) -> Self {
        let mut g = Self::new(levels);
        assert_eq!(
            values.len(),
            g.values.len(),
            "value array does not match the level vector's point count"
        );
        g.values = values;
        g
    }

    /// The zero-based level vector.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The stored nodal values in row-major sampling order.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Largest absolute nodal value — the grid's interpolant is a
    /// multilinear blend of nodal values with zero boundary, so this
    /// bounds `|interpolate(x)|` everywhere.
    pub fn max_abs(&self) -> f64 {
        self.values
            .iter()
            .fold(0.0f64, |acc, v| acc.max(v.to_f64().abs()))
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no values are stored (impossible for valid levels).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn decode(&self, mut flat: usize, multi: &mut [usize]) {
        for t in (0..multi.len()).rev() {
            multi[t] = flat % self.per_dim[t];
            flat /= self.per_dim[t];
        }
    }

    /// Value at an interior multi-index.
    pub fn get(&self, multi: &[usize]) -> T {
        let mut flat = 0usize;
        for (t, &m) in multi.iter().enumerate() {
            assert!(m < self.per_dim[t], "multi-index out of range");
            flat = flat * self.per_dim[t] + m;
        }
        self.values[flat]
    }

    /// Piecewise multilinear interpolation at `x ∈ [0,1]^d`, zero
    /// boundary.
    pub fn interpolate(&self, x: &[f64]) -> f64 {
        let d = self.levels.len();
        assert_eq!(x.len(), d, "query point dimension mismatch");
        let mut lo = vec![0isize; d];
        let mut w = vec![0.0f64; d];
        for t in 0..d {
            let cells = (self.per_dim[t] + 1) as f64;
            let pos = x[t] * cells;
            let cell = (pos as u64).min(self.per_dim[t] as u64);
            lo[t] = cell as isize - 1;
            w[t] = pos - cell as f64;
        }
        let mut acc = 0.0f64;
        for corner in 0..(1u32 << d) {
            let mut weight = 1.0f64;
            let mut flat = 0usize;
            let mut inside = true;
            for t in 0..d {
                let hi = (corner >> t) & 1 == 1;
                let node = lo[t] + hi as isize;
                weight *= if hi { w[t] } else { 1.0 - w[t] };
                if node < 0 || node >= self.per_dim[t] as isize {
                    inside = false;
                    break;
                }
                flat = flat * self.per_dim[t] + node as usize;
            }
            if inside && weight != 0.0 {
                acc += weight * self.values[flat].to_f64();
            }
        }
        acc
    }

    /// Bytes held by the value array.
    pub fn memory_bytes(&self) -> usize {
        self.values.capacity() * T::size_bytes() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_counts() {
        assert_eq!(AnisoFullGrid::<f64>::point_count(&[0, 0]), Some(1));
        assert_eq!(AnisoFullGrid::<f64>::point_count(&[2, 0]), Some(7));
        assert_eq!(AnisoFullGrid::<f64>::point_count(&[1, 2]), Some(21));
        assert!(AnisoFullGrid::<f64>::point_count(&[30; 4]).is_none());
    }

    #[test]
    fn sampling_coordinates() {
        // Levels (1, 0): 3 × 1 points at x ∈ {1/4, 2/4, 3/4}, y = 1/2.
        let g = AnisoFullGrid::<f64>::from_fn(&[1, 0], |x| 10.0 * x[0] + x[1]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.get(&[0, 0]), 2.5 + 0.5);
        assert_eq!(g.get(&[2, 0]), 7.5 + 0.5);
    }

    #[test]
    fn parallel_sampling_matches() {
        let f = |x: &[f64]| x[0] * x[1] - x[2];
        let a = AnisoFullGrid::<f64>::from_fn(&[2, 1, 3], f);
        let b = AnisoFullGrid::<f64>::from_fn_parallel(&[2, 1, 3], f);
        assert_eq!(a, b);
    }

    #[test]
    fn interpolation_exact_at_nodes_zero_at_boundary() {
        let f = |x: &[f64]| x[0] * (1.0 - x[0]) * x[1];
        let g = AnisoFullGrid::<f64>::from_fn(&[2, 1], f);
        for a in 0..7usize {
            for b in 0..3usize {
                let x = [(a + 1) as f64 / 8.0, (b + 1) as f64 / 4.0];
                assert!((g.interpolate(&x) - f(&x)).abs() < 1e-14);
            }
        }
        assert_eq!(g.interpolate(&[0.0, 0.5]), 0.0);
        assert_eq!(g.interpolate(&[1.0, 1.0]), 0.0);
        assert_eq!(g.interpolate(&[0.3, 1.0]), 0.0);
    }

    #[test]
    fn interpolation_is_linear_between_nodes() {
        let g = AnisoFullGrid::<f64>::from_fn(&[1], |x| x[0] * x[0]);
        let a = g.interpolate(&[0.25]);
        let b = g.interpolate(&[0.5]);
        assert!((g.interpolate(&[0.375]) - 0.5 * (a + b)).abs() < 1e-14);
    }

    #[test]
    fn level_zero_everywhere_is_single_point() {
        let g = AnisoFullGrid::<f64>::from_fn(&[0, 0, 0], |x| x.iter().sum());
        assert_eq!(g.len(), 1);
        assert_eq!(g.get(&[0, 0, 0]), 1.5);
        assert!((g.interpolate(&[0.5, 0.5, 0.5]) - 1.5).abs() < 1e-15);
    }
}
