//! Fault-tolerant combination-technique executor.
//!
//! [`CombinationExecutor`] runs the combination scheme the way a
//! distributed solver would (paper §7): every component grid is an
//! independent task on the `sg-par` pool, every computed component is
//! checkpointed through the `SGCM` manifest path in `sg-io`
//! ([`sg_io::manifest`]), and recovery from the manifest is the *only*
//! way results leave the executor — so the checkpoint path is exercised
//! on every run, not just on failure. Component loss is survived via two
//! pluggable [`RecoveryPolicy`]s:
//!
//! * [`RecoveryPolicy::Recompute`] re-derives each lost component by
//!   re-sampling the original function. Sampling is deterministic, so the
//!   recovered run is **bitwise identical** to the fault-free run.
//! * [`RecoveryPolicy::Reweight`] solves the inclusion–exclusion
//!   coefficient adjustment over the surviving downset
//!   ([`crate::reweight`]) — the combination analogue of `sg-io`'s
//!   `DegradedGrid` — and reports a rigorous error bound built from the
//!   per-component max-abs metadata that survives in the manifest header
//!   even when the payload is gone.
//!
//! Failure semantics by stage:
//!
//! * a component task that panics is retried once (the values never
//!   existed anywhere, so re-running the task is the only source); a
//!   second panic is a typed error, never an unwinding one.
//! * a component dropped between compute and commit is tombstoned in the
//!   manifest and handled by the recovery policy like any storage loss —
//!   its metadata (coefficient, levels, max-abs) survives in the header.
//! * storage faults (torn writes, bit flips, truncation, lost headers)
//!   surface as lost components at recovery time and are handled by the
//!   policy, or become typed errors when nothing survivable remains.
//!
//! Output is bitwise deterministic in the thread count and in task
//! completion order: results are keyed by task index, never by arrival.

use crate::aniso::AnisoFullGrid;
use crate::reweight::solve_reweight;
use crate::{CombinationGrid, Component};
use sg_core::error::SgError;
use sg_core::iter::for_each_level;
use sg_core::level::{GridSpec, Level};
use sg_core::real::Real;
use sg_io::manifest::{recover_component_set, write_component_set, ComponentMeta};
use sg_io::{MemorySink, SnapshotSink};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

tel! {
    static EXEC_TASKS: sg_telemetry::Counter =
        sg_telemetry::Counter::new("combination.tasks_scheduled");
    static EXEC_RETRIES: sg_telemetry::Counter =
        sg_telemetry::Counter::new("combination.task_retries");
    static EXEC_LOST: sg_telemetry::Counter =
        sg_telemetry::Counter::new("combination.components_lost");
    static EXEC_RECOMPUTED: sg_telemetry::Counter =
        sg_telemetry::Counter::new("combination.components_recomputed");
    static EXEC_REWEIGHTED: sg_telemetry::Counter =
        sg_telemetry::Counter::new("combination.runs_reweighted");
    static EXEC_CHECKPOINT_BYTES: sg_telemetry::Counter =
        sg_telemetry::Counter::new("combination.checkpoint_bytes");
    static EXEC_SAMPLE_NS: sg_telemetry::Histogram =
        sg_telemetry::Histogram::new("combination.sample_ns");
    static EXEC_RECOVER_NS: sg_telemetry::Histogram =
        sg_telemetry::Histogram::new("combination.recover_ns");
}

/// What the executor does about components it cannot read back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Re-sample every lost component exactly; the result is bitwise
    /// identical to the fault-free run.
    Recompute,
    /// Re-solve the combination coefficients over the surviving downset
    /// and report a rigorous error bound; no re-sampling.
    Reweight,
}

impl RecoveryPolicy {
    /// Kebab-case name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::Recompute => "recompute",
            RecoveryPolicy::Reweight => "reweight",
        }
    }
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Recovery policy applied to lost components.
    pub policy: RecoveryPolicy,
    /// Extra diagonals below the classical scheme to compute and
    /// checkpoint with coefficient 0. They cost little (coarse grids),
    /// never change the fault-free result, and give [`RecoveryPolicy::
    /// Reweight`] the downward room the shrunken downset's coefficients
    /// land on — the standard FTCT mitigation.
    pub spare_diagonals: usize,
    /// Provenance stamp recorded in the manifest.
    pub provenance: String,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            policy: RecoveryPolicy::Recompute,
            spare_diagonals: 1,
            provenance: String::new(),
        }
    }
}

/// Faults the test harness injects into a run (all off by default).
#[derive(Debug, Clone, Copy, Default)]
pub struct InjectedFaults {
    /// Panic the given component task on its first attempt; when the
    /// flag is true the retry panics too (persistent failure).
    pub task_panic: Option<(usize, bool)>,
    /// Drop the given component's values after compute, before the
    /// manifest commit (its metadata survives; the payload is
    /// tombstoned).
    pub drop_pre_commit: Option<usize>,
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Every component survived; no policy engaged.
    Clean,
    /// The listed task indices were re-sampled; the result is bitwise
    /// identical to a fault-free run.
    Recomputed {
        /// Task indices that were lost and re-derived.
        components: Vec<usize>,
    },
    /// The coefficients were re-solved around the listed lost tasks.
    Reweighted {
        /// Task indices excluded from the adjusted combination.
        dropped: Vec<usize>,
        /// Rigorous bound on the pointwise deviation from the fault-free
        /// interpolant (see [`crate::reweight::ReweightPlan`]).
        error_bound: f64,
    },
}

/// A completed (possibly recovered) run.
#[derive(Debug, Clone)]
pub struct ExecutorRun<T> {
    /// The combined interpolant, assembled from checkpoint-recovered
    /// values (plus recomputed or re-weighted components per policy).
    pub grid: CombinationGrid<T>,
    /// How recovery ended.
    pub outcome: RunOutcome,
    /// Task indices whose checkpoint sections were lost.
    pub lost_components: Vec<usize>,
    /// Total tasks scheduled (scheme + spare diagonals).
    pub tasks: usize,
    /// Spare-diagonal tasks among them (coefficient 0).
    pub spares: usize,
}

/// Schedules, checkpoints, and recovers a combination-technique run.
#[derive(Debug, Clone)]
pub struct CombinationExecutor {
    spec: GridSpec,
    cfg: ExecutorConfig,
}

impl CombinationExecutor {
    /// Executor with the default configuration (recompute policy, one
    /// spare diagonal).
    pub fn new(spec: GridSpec) -> Self {
        Self::with_config(spec, ExecutorConfig::default())
    }

    /// Executor with an explicit configuration.
    pub fn with_config(spec: GridSpec, cfg: ExecutorConfig) -> Self {
        Self { spec, cfg }
    }

    /// Grid shape the run represents.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// The active configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.cfg
    }

    /// The task list: the classical scheme's `(coefficient, level)`
    /// pairs followed by the spare diagonals with coefficient 0, in a
    /// deterministic order results are keyed by.
    pub fn tasks(&self) -> Vec<(i64, Vec<Level>)> {
        let mut tasks = CombinationGrid::<f64>::scheme(self.spec);
        let d = self.spec.dim();
        let n = self.spec.max_sum();
        let lowest = n - (d - 1).min(n);
        for s in 1..=self.cfg.spare_diagonals {
            let Some(diag) = lowest.checked_sub(s) else {
                break;
            };
            for_each_level(d, diag, |l| tasks.push((0, l.to_vec())));
        }
        tasks
    }

    /// Number of spare-diagonal tasks [`Self::tasks`] appends.
    pub fn spare_tasks(&self) -> usize {
        self.tasks().len() - CombinationGrid::<f64>::scheme(self.spec).len()
    }

    /// Sample every component grid as independent tasks on the `sg-par`
    /// pool. A task that panics is retried once; a second panic is a
    /// typed error. Results are keyed by task index, so the output is
    /// bitwise identical at any thread width.
    pub fn compute_components<T: Real>(
        &self,
        f: impl Fn(&[f64]) -> T + Sync,
    ) -> Result<Vec<AnisoFullGrid<T>>, SgError> {
        self.compute_components_faulty(f, InjectedFaults::default(), None)
    }

    /// [`Self::compute_components`] with fault injection and an optional
    /// explicit completion order (a permutation of task indices; tasks
    /// then run sequentially in that order, simulating an arbitrary
    /// scheduler). Used by the fault harness and the determinism tests.
    pub fn compute_components_faulty<T: Real>(
        &self,
        f: impl Fn(&[f64]) -> T + Sync,
        faults: InjectedFaults,
        order: Option<&[usize]>,
    ) -> Result<Vec<AnisoFullGrid<T>>, SgError> {
        tel! { let sample_t0 = std::time::Instant::now(); }
        let tasks = self.tasks();
        tel! { EXEC_TASKS.add(tasks.len() as u64); }
        let f = &f;
        let run_task = |k: usize| -> Result<AnisoFullGrid<T>, String> {
            let levels = &tasks[k].1;
            for attempt in 0..2u32 {
                let injected = match faults.task_panic {
                    Some((fk, persistent)) => fk == k && (attempt == 0 || persistent),
                    None => false,
                };
                let r = catch_unwind(AssertUnwindSafe(|| {
                    if injected {
                        panic!("injected component task panic");
                    }
                    AnisoFullGrid::from_fn(levels, f)
                }));
                match r {
                    Ok(grid) => return Ok(grid),
                    Err(payload) => {
                        tel! { EXEC_RETRIES.add(1); }
                        if attempt == 1 {
                            let why = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "unknown panic".into());
                            return Err(why);
                        }
                    }
                }
            }
            unreachable!("task loop returns within two attempts")
        };
        let results: Vec<Result<AnisoFullGrid<T>, String>> = match order {
            None => {
                sg_par::par_map_enumerated_labeled(&tasks, "combination.sample", |k, _| run_task(k))
            }
            Some(perm) => {
                assert_eq!(perm.len(), tasks.len(), "order must cover every task");
                let mut seen = vec![false; tasks.len()];
                let mut slots: Vec<Option<Result<AnisoFullGrid<T>, String>>> =
                    (0..tasks.len()).map(|_| None).collect();
                for &k in perm {
                    assert!(!seen[k], "order must be a permutation of task indices");
                    seen[k] = true;
                    slots[k] = Some(run_task(k));
                }
                slots
                    .into_iter()
                    .map(|s| s.expect("permutation covered every task"))
                    .collect()
            }
        };
        tel! { EXEC_SAMPLE_NS.record(sample_t0.elapsed().as_nanos() as u64); }
        results
            .into_iter()
            .enumerate()
            .map(|(k, r)| {
                r.map_err(|why| {
                    SgError::Io(format!("component task {k} failed on both attempts: {why}"))
                })
            })
            .collect()
    }

    /// Checkpoint computed components into a manifest through `sink`.
    /// `drop_pre_commit` tombstones one component's payload while
    /// keeping its metadata — the "computed but lost before commit"
    /// fault the harness injects.
    pub fn checkpoint<T: Real>(
        &self,
        components: &[AnisoFullGrid<T>],
        sink: &mut dyn SnapshotSink,
        drop_pre_commit: Option<usize>,
    ) -> Result<(), SgError> {
        let tasks = self.tasks();
        assert_eq!(components.len(), tasks.len(), "one component per task");
        let entries: Vec<(ComponentMeta, Option<&[T]>)> = tasks
            .iter()
            .zip(components)
            .enumerate()
            .map(|(k, ((coefficient, levels), grid))| {
                let meta = ComponentMeta {
                    coefficient: *coefficient,
                    levels: levels.clone(),
                    max_abs: grid.max_abs(),
                };
                let payload = (drop_pre_commit != Some(k)).then(|| grid.values());
                (meta, payload)
            })
            .collect();
        write_component_set(self.spec.dim(), &entries, sink, &self.cfg.provenance)
    }

    /// Recover a run from published manifest bytes, applying the
    /// configured policy to any lost components. `f` is only sampled
    /// under [`RecoveryPolicy::Recompute`] (and must be the function the
    /// manifest was built from).
    pub fn recover_run<T: Real>(
        &self,
        bytes: &[u8],
        f: impl Fn(&[f64]) -> T + Sync,
    ) -> Result<ExecutorRun<T>, SgError> {
        tel! { let recover_t0 = std::time::Instant::now(); }
        let tasks = self.tasks();
        let recovery = recover_component_set::<T>(bytes)?;
        if recovery.info.dim != self.spec.dim() || recovery.info.components.len() != tasks.len() {
            return Err(SgError::Corrupt(
                "manifest does not describe this executor's task set".into(),
            ));
        }
        for (k, ((coefficient, levels), meta)) in
            tasks.iter().zip(&recovery.info.components).enumerate()
        {
            if meta.coefficient != *coefficient || &meta.levels != levels {
                return Err(SgError::Corrupt(format!(
                    "manifest component {k} does not match the scheduled task"
                )));
            }
        }
        let lost = recovery.lost_components();
        tel! { EXEC_LOST.add(lost.len() as u64); }
        let run = if lost.is_empty() {
            self.assemble_scheme_run(&tasks, recovery.payloads, RunOutcome::Clean, Vec::new())
        } else {
            match self.cfg.policy {
                RecoveryPolicy::Recompute => {
                    let mut payloads = recovery.payloads;
                    for &k in &lost {
                        let grid = AnisoFullGrid::from_fn(&tasks[k].1, &f);
                        payloads[k] = Some(grid.values().to_vec());
                        tel! { EXEC_RECOMPUTED.add(1); }
                    }
                    self.assemble_scheme_run(
                        &tasks,
                        payloads,
                        RunOutcome::Recomputed {
                            components: lost.clone(),
                        },
                        lost,
                    )
                }
                RecoveryPolicy::Reweight => {
                    self.assemble_reweighted_run(&tasks, &recovery, lost)?
                }
            }
        };
        tel! { EXEC_RECOVER_NS.record(recover_t0.elapsed().as_nanos() as u64); }
        Ok(run)
    }

    /// Build the run grid from the original scheme (coefficient ≠ 0
    /// tasks) with every payload present.
    fn assemble_scheme_run<T: Real>(
        &self,
        tasks: &[(i64, Vec<Level>)],
        payloads: Vec<Option<Vec<T>>>,
        outcome: RunOutcome,
        lost: Vec<usize>,
    ) -> ExecutorRun<T> {
        let components = tasks
            .iter()
            .zip(payloads)
            .filter(|((coefficient, _), _)| *coefficient != 0)
            .map(|((coefficient, levels), payload)| Component {
                coefficient: *coefficient,
                grid: AnisoFullGrid::from_values(
                    levels,
                    payload.expect("caller supplies every scheme payload"),
                ),
            })
            .collect();
        ExecutorRun {
            grid: CombinationGrid::from_components(self.spec, components),
            outcome,
            lost_components: lost,
            tasks: tasks.len(),
            spares: tasks.iter().filter(|(c, _)| *c == 0).count(),
        }
    }

    /// Build the run grid from a re-solved coefficient set over the
    /// surviving components.
    fn assemble_reweighted_run<T: Real>(
        &self,
        tasks: &[(i64, Vec<Level>)],
        recovery: &sg_io::ComponentSetRecovery<T>,
        lost: Vec<usize>,
    ) -> Result<ExecutorRun<T>, SgError> {
        let d = self.spec.dim();
        let n = self.spec.max_sum();
        let mut full_downset = Vec::new();
        for s in 0..=n {
            for_each_level(d, s, |l| full_downset.push(l.to_vec()));
        }
        let available: BTreeSet<Vec<Level>> = tasks
            .iter()
            .enumerate()
            .filter(|(k, _)| recovery.payloads[*k].is_some())
            .map(|(_, (_, l))| l.clone())
            .collect();
        let max_abs: BTreeMap<Vec<Level>, f64> = recovery
            .info
            .components
            .iter()
            .map(|m| (m.levels.clone(), m.max_abs))
            .collect();
        let plan = solve_reweight(tasks, &full_downset, &available, &max_abs).map_err(|why| {
            SgError::Corrupt(format!(
                "reweight infeasible over lost components {lost:?}: {why}"
            ))
        })?;
        let index_of: BTreeMap<&[Level], usize> = tasks
            .iter()
            .enumerate()
            .map(|(k, (_, l))| (l.as_slice(), k))
            .collect();
        let components = plan
            .coefficients
            .iter()
            .map(|(coefficient, levels)| {
                let k = index_of[levels.as_slice()];
                let payload = recovery.payloads[k]
                    .clone()
                    .expect("solver only uses available components");
                Component {
                    coefficient: *coefficient,
                    grid: AnisoFullGrid::from_values(levels, payload),
                }
            })
            .collect();
        tel! { EXEC_REWEIGHTED.add(1); }
        Ok(ExecutorRun {
            grid: CombinationGrid::from_components(self.spec, components),
            outcome: RunOutcome::Reweighted {
                dropped: lost.clone(),
                error_bound: plan.error_bound,
            },
            lost_components: lost,
            tasks: tasks.len(),
            spares: tasks.iter().filter(|(c, _)| *c == 0).count(),
        })
    }

    /// Full pipeline through an in-memory checkpoint: compute, write the
    /// manifest, read it back, recover. The returned grid always went
    /// through the serialization path, so every run exercises it.
    pub fn run<T: Real>(&self, f: impl Fn(&[f64]) -> T + Sync) -> Result<ExecutorRun<T>, SgError> {
        let components = self.compute_components(&f)?;
        let mut sink = MemorySink::new();
        self.checkpoint(&components, &mut sink, None)?;
        let bytes = sink
            .into_published()
            .ok_or_else(|| SgError::Io("checkpoint did not commit".into()))?;
        tel! { EXEC_CHECKPOINT_BYTES.add(bytes.len() as u64); }
        self.recover_run(&bytes, &f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_io::FaultSink;

    fn test_fn(x: &[f64]) -> f64 {
        x.iter()
            .enumerate()
            .map(|(t, &v)| (1.0 + 0.3 * t as f64) * v * (1.0 - v))
            .product::<f64>()
            + x.iter().sum::<f64>().sin()
    }

    fn gold(spec: GridSpec) -> ExecutorRun<f64> {
        let run = CombinationExecutor::new(spec).run(test_fn).unwrap();
        assert_eq!(run.outcome, RunOutcome::Clean);
        run
    }

    fn grids_bitwise_equal(a: &CombinationGrid<f64>, b: &CombinationGrid<f64>) -> bool {
        a.components().len() == b.components().len()
            && a.components().iter().zip(b.components()).all(|(x, y)| {
                x.coefficient == y.coefficient
                    && x.grid.levels() == y.grid.levels()
                    && x.grid.values() == y.grid.values()
            })
    }

    #[test]
    fn clean_run_matches_from_fn_bitwise() {
        let spec = GridSpec::new(3, 4);
        let run = gold(spec);
        let direct = CombinationGrid::<f64>::from_fn(spec, test_fn);
        assert!(grids_bitwise_equal(&run.grid, &direct));
        assert_eq!(run.tasks - run.spares, direct.components().len());
        assert!(run.spares > 0);
    }

    #[test]
    fn task_panic_is_retried_and_bitwise_clean() {
        let spec = GridSpec::new(2, 3);
        let exec = CombinationExecutor::new(spec);
        let order: Vec<usize> = (0..exec.tasks().len()).collect();
        let faults = InjectedFaults {
            task_panic: Some((1, false)),
            drop_pre_commit: None,
        };
        let components = exec
            .compute_components_faulty(test_fn, faults, Some(&order))
            .unwrap();
        let clean = exec.compute_components(test_fn).unwrap();
        assert_eq!(components.len(), clean.len());
        for (a, b) in components.iter().zip(&clean) {
            assert_eq!(a.values(), b.values());
        }
    }

    #[test]
    fn persistent_task_panic_is_a_typed_error() {
        let spec = GridSpec::new(2, 3);
        let exec = CombinationExecutor::new(spec);
        let order: Vec<usize> = (0..exec.tasks().len()).collect();
        let faults = InjectedFaults {
            task_panic: Some((0, true)),
            drop_pre_commit: None,
        };
        let err = exec
            .compute_components_faulty(test_fn, faults, Some(&order))
            .unwrap_err();
        assert!(matches!(err, SgError::Io(_)), "{err}");
    }

    #[test]
    fn drop_pre_commit_recompute_restores_bitwise_identity() {
        let spec = GridSpec::new(3, 3);
        let exec = CombinationExecutor::new(spec);
        let reference = gold(spec);
        let components = exec.compute_components(test_fn).unwrap();
        for k in 0..exec.tasks().len() {
            let mut sink = MemorySink::new();
            exec.checkpoint(&components, &mut sink, Some(k)).unwrap();
            let bytes = sink.into_published().unwrap();
            let run = exec.recover_run(&bytes, test_fn).unwrap();
            assert_eq!(run.lost_components, vec![k]);
            assert_eq!(
                run.outcome,
                RunOutcome::Recomputed {
                    components: vec![k]
                }
            );
            assert!(grids_bitwise_equal(&run.grid, &reference.grid), "k={k}");
        }
    }

    #[test]
    fn drop_pre_commit_reweight_stays_within_its_bound() {
        let spec = GridSpec::new(3, 3);
        let exec = CombinationExecutor::with_config(
            spec,
            ExecutorConfig {
                policy: RecoveryPolicy::Reweight,
                ..ExecutorConfig::default()
            },
        );
        let reference = gold(spec);
        let components = exec.compute_components(test_fn).unwrap();
        let xs = sg_core::functions::halton_points(3, 40);
        for k in 0..exec.tasks().len() {
            let mut sink = MemorySink::new();
            exec.checkpoint(&components, &mut sink, Some(k)).unwrap();
            let bytes = sink.into_published().unwrap();
            let run = match exec.recover_run(&bytes, test_fn) {
                Ok(run) => run,
                // A shrink that strands every usable downset is allowed
                // to fail typed.
                Err(SgError::Corrupt(_)) => continue,
                Err(other) => panic!("unexpected error class: {other}"),
            };
            let RunOutcome::Reweighted {
                ref dropped,
                error_bound,
            } = run.outcome
            else {
                panic!("expected a reweighted outcome, got {:?}", run.outcome)
            };
            assert_eq!(dropped, &[k]);
            assert!(error_bound.is_finite() && error_bound >= 0.0);
            for x in xs.chunks_exact(3) {
                let a = run.grid.evaluate(x);
                let b = reference.grid.evaluate(x);
                assert!(
                    (a - b).abs() <= error_bound + 1e-9,
                    "k={k} x={x:?}: |{a} − {b}| exceeds bound {error_bound}"
                );
            }
            // Constants must still be exact: coefficients sum to 1.
            let total: i64 = run.grid.components().iter().map(|c| c.coefficient).sum();
            assert_eq!(total, 1, "k={k}");
        }
    }

    #[test]
    fn torn_manifest_recompute_is_bitwise() {
        let spec = GridSpec::new(2, 4);
        let exec = CombinationExecutor::new(spec);
        let reference = gold(spec);
        let components = exec.compute_components(test_fn).unwrap();
        // Baseline manifest to learn the section boundaries.
        let mut sink = MemorySink::new();
        exec.checkpoint(&components, &mut sink, None).unwrap();
        let bytes = sink.into_published().unwrap();
        let bounds = sg_io::component_boundaries(&bytes).unwrap();
        // Tear mid-section 2 but let the commit go through.
        let mut sink = FaultSink::new(sg_io::WriteFault::Torn {
            after_bytes: bounds[2] + 7,
        });
        exec.checkpoint(&components, &mut sink, None).unwrap();
        let torn = sink.into_published().unwrap();
        let run = exec.recover_run(&torn, test_fn).unwrap();
        assert!(!run.lost_components.is_empty());
        assert!(grids_bitwise_equal(&run.grid, &reference.grid));
    }

    #[test]
    fn completion_order_does_not_change_bits() {
        let spec = GridSpec::new(3, 3);
        let exec = CombinationExecutor::new(spec);
        let n = exec.tasks().len();
        let forward: Vec<usize> = (0..n).collect();
        let reverse: Vec<usize> = (0..n).rev().collect();
        let a = exec
            .compute_components_faulty(test_fn, InjectedFaults::default(), Some(&forward))
            .unwrap();
        let b = exec
            .compute_components_faulty(test_fn, InjectedFaults::default(), Some(&reverse))
            .unwrap();
        let c = exec.compute_components(test_fn).unwrap();
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert_eq!(x.values(), y.values());
            assert_eq!(x.values(), z.values());
        }
    }

    #[test]
    fn spare_diagonals_do_not_change_the_clean_result() {
        let spec = GridSpec::new(3, 4);
        let with_spares = CombinationExecutor::with_config(
            spec,
            ExecutorConfig {
                spare_diagonals: 2,
                ..ExecutorConfig::default()
            },
        )
        .run(test_fn)
        .unwrap();
        let without = CombinationExecutor::with_config(
            spec,
            ExecutorConfig {
                spare_diagonals: 0,
                ..ExecutorConfig::default()
            },
        )
        .run(test_fn)
        .unwrap();
        assert!(grids_bitwise_equal(&with_spares.grid, &without.grid));
    }

    #[test]
    fn garbage_manifest_is_a_typed_error() {
        let exec = CombinationExecutor::new(GridSpec::new(2, 3));
        assert!(exec.recover_run::<f64>(b"junk", test_fn).is_err());
        // A manifest for a different task set is rejected.
        let other = CombinationExecutor::new(GridSpec::new(2, 4));
        let components = other.compute_components(test_fn).unwrap();
        let mut sink = MemorySink::new();
        other.checkpoint(&components, &mut sink, None).unwrap();
        let bytes = sink.into_published().unwrap();
        assert!(matches!(
            exec.recover_run::<f64>(&bytes, test_fn),
            Err(SgError::Corrupt(_))
        ));
    }
}
