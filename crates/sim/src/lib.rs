#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // lockstep indexing over parallel arrays reads clearer in numeric kernels

//! # sg-sim — the simulation substrate of the Fig. 1 pipeline
//!
//! The paper's application is "the visual and interactive exploration of
//! multi-dimensional data" produced by "the multi-dimensional and
//! multi-physics simulation under investigation" (§1). This crate is that
//! first box of Fig. 1: a d-dimensional diffusion (heat-equation) solver,
//! swept over physical parameters, whose output forms the
//! higher-dimensional dataset (space × time × parameter) that the sparse
//! grid pipeline compresses.
//!
//! The solver is a standard explicit FTCS scheme on the same uniform
//! interior lattice as [`sg_core::full_grid::FullGrid`] with homogeneous
//! Dirichlet boundaries, CFL-guarded, and validated against the analytic
//! decay of Fourier modes.

use sg_core::full_grid::FullGrid;

/// Explicit finite-difference solver for `∂u/∂t = ν Δu` on `[0,1]^d`
/// with zero Dirichlet boundary values.
#[derive(Debug, Clone)]
pub struct HeatSolver {
    space_dims: usize,
    level: usize,
    nu: f64,
    dt: f64,
    time: f64,
    per_dim: usize,
    strides: Vec<usize>,
    field: Vec<f64>,
    scratch: Vec<f64>,
}

impl HeatSolver {
    /// New solver on the interior lattice of refinement level `level`
    /// (`2^level − 1` points per dimension) with diffusivity `nu`,
    /// initialized by sampling `ic`.
    ///
    /// The time step is fixed at 90% of the FTCS stability limit
    /// `h²/(2·d·ν)`.
    pub fn new(space_dims: usize, level: usize, nu: f64, ic: impl FnMut(&[f64]) -> f64) -> Self {
        assert!((1..=3).contains(&space_dims), "1 to 3 spatial dimensions");
        assert!(nu > 0.0, "diffusivity must be positive");
        let initial = FullGrid::<f64>::from_fn(space_dims, level, ic);
        let per_dim = FullGrid::<f64>::points_per_dim(level);
        let mut strides = vec![0usize; space_dims];
        let mut s = 1usize;
        for t in (0..space_dims).rev() {
            strides[t] = s;
            s *= per_dim;
        }
        let h = 1.0 / (1u64 << level) as f64;
        let dt = 0.9 * h * h / (2.0 * space_dims as f64 * nu);
        let field = initial.values().to_vec();
        Self {
            space_dims,
            level,
            nu,
            dt,
            time: 0.0,
            per_dim,
            strides,
            scratch: vec![0.0; field.len()],
            field,
        }
    }

    /// Spatial dimensionality.
    pub fn space_dims(&self) -> usize {
        self.space_dims
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The (stability-limited) time step.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Advance one FTCS step.
    pub fn step(&mut self) {
        let h = 1.0 / (1u64 << self.level) as f64;
        let r = self.nu * self.dt / (h * h);
        let per_dim = self.per_dim;
        let strides = &self.strides;
        let d = self.space_dims;
        let field = &self.field;
        const CHUNK: usize = 4096;
        sg_par::par_chunks_mut(&mut self.scratch, CHUNK, |ci, chunk| {
            let base = ci * CHUNK;
            for (off, out) in chunk.iter_mut().enumerate() {
                let flat = base + off;
                let u = field[flat];
                let mut lap = 0.0;
                for t in 0..d {
                    let k = flat / strides[t] % per_dim;
                    let left = if k > 0 { field[flat - strides[t]] } else { 0.0 };
                    let right = if k + 1 < per_dim {
                        field[flat + strides[t]]
                    } else {
                        0.0
                    };
                    lap += left - 2.0 * u + right;
                }
                *out = u + r * lap;
            }
        });
        std::mem::swap(&mut self.field, &mut self.scratch);
        self.time += self.dt;
    }

    /// Advance until `time ≥ t`.
    pub fn advance_to(&mut self, t: f64) {
        while self.time < t {
            self.step();
        }
    }

    /// Snapshot the current field as a [`FullGrid`] (zero-boundary
    /// interior lattice, directly consumable by the compression
    /// pipeline's `restrict_to_sparse`).
    pub fn snapshot(&self) -> FullGrid<f64> {
        let mut g = FullGrid::<f64>::new(self.space_dims, self.level);
        let mut multi = vec![0usize; self.space_dims];
        for flat in 0..self.field.len() {
            let mut rem = flat;
            for t in (0..self.space_dims).rev() {
                multi[t] = rem % self.per_dim;
                rem /= self.per_dim;
            }
            g.set(&multi, self.field[flat]);
        }
        g
    }

    /// Maximum absolute field value (for max-principle checks).
    pub fn max_abs(&self) -> f64 {
        self.field.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

/// A parameter sweep of heat simulations: snapshots over a lattice of
/// save times × diffusivities, exposed as one `(space + 2)`-dimensional
/// function on the unit cube — the dataset the steering application
/// compresses (space…, normalized time, normalized diffusivity).
#[derive(Debug, Clone)]
pub struct SweepDataset {
    space_dims: usize,
    times: Vec<f64>,
    nus: Vec<f64>,
    /// `snapshots[nu_index][time_index]`.
    snapshots: Vec<Vec<FullGrid<f64>>>,
}

impl SweepDataset {
    /// Run one simulation per diffusivity in `nus` (in parallel), saving
    /// a snapshot at every time in `times` (ascending, starting at 0.0).
    pub fn generate(
        space_dims: usize,
        level: usize,
        ic: impl Fn(&[f64]) -> f64 + Sync,
        times: &[f64],
        nus: &[f64],
    ) -> Self {
        assert!(
            times.len() >= 2 && nus.len() >= 2,
            "need a 2+ point lattice"
        );
        assert!(
            times.windows(2).all(|w| w[1] > w[0]) && times[0] == 0.0,
            "times must be ascending from 0"
        );
        assert!(nus.windows(2).all(|w| w[1] > w[0]), "nus must be ascending");
        let snapshots: Vec<Vec<FullGrid<f64>>> = sg_par::par_map(nus, |&nu| {
            let mut solver = HeatSolver::new(space_dims, level, nu, &ic);
            times
                .iter()
                .map(|&t| {
                    solver.advance_to(t);
                    solver.snapshot()
                })
                .collect()
        });
        Self {
            space_dims,
            times: times.to_vec(),
            nus: nus.to_vec(),
            snapshots,
        }
    }

    /// Dimensionality of the dataset: space + time + diffusivity.
    pub fn dim(&self) -> usize {
        self.space_dims + 2
    }

    /// Total stored samples across the sweep.
    pub fn total_samples(&self) -> usize {
        self.snapshots
            .iter()
            .flat_map(|row| row.iter().map(|g| g.len()))
            .sum()
    }

    /// Map a normalized axis coordinate in `[0,1]` onto a lattice
    /// `(lower index, weight)` pair.
    fn locate(axis: &[f64], u: f64) -> (usize, f64) {
        // The lattice is uniform in its *index*, not in value: normalized
        // coordinates address the run lattice directly.
        let pos = u.clamp(0.0, 1.0) * (axis.len() - 1) as f64;
        let k = (pos as usize).min(axis.len() - 2);
        (k, pos - k as f64)
    }

    /// Evaluate the dataset at `x = (space…, t01, nu01)` with all
    /// components in `[0,1]`: multilinear across the (time, diffusivity)
    /// run lattice, piecewise multilinear in space within each snapshot.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "dataset dimension mismatch");
        let space = &x[..self.space_dims];
        let (kt, wt) = Self::locate(&self.times, x[self.space_dims]);
        let (kn, wn) = Self::locate(&self.nus, x[self.space_dims + 1]);
        let mut acc = 0.0;
        for (dt, wt) in [(0usize, 1.0 - wt), (1, wt)] {
            for (dn, wn) in [(0usize, 1.0 - wn), (1, wn)] {
                let w = wt * wn;
                if w != 0.0 {
                    acc += w * self.snapshots[kn + dn][kt + dt].interpolate(space);
                }
            }
        }
        acc
    }

    /// Closure form for `CompactGrid::from_fn`.
    pub fn as_fn(&self) -> impl Fn(&[f64]) -> f64 + Sync + '_ {
        move |x| self.eval(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn single_mode_decays_at_the_analytic_rate_1d() {
        // u(x,0) = sin(πx) ⇒ u(x,t) = e^{−νπ²t} sin(πx).
        let nu = 0.5;
        let mut s = HeatSolver::new(1, 7, nu, |x| (PI * x[0]).sin());
        let t_end = 0.05;
        s.advance_to(t_end);
        let decay = (-nu * PI * PI * s.time()).exp();
        let g = s.snapshot();
        for k in [10usize, 40, 63, 100] {
            let x = (k + 1) as f64 / 128.0;
            let expect = decay * (PI * x).sin();
            let got = g.get(&[k]);
            assert!(
                (got - expect).abs() < 2e-3,
                "x={x}: {got} vs analytic {expect}"
            );
        }
    }

    #[test]
    fn product_mode_decays_at_double_rate_2d() {
        let nu = 0.25;
        let mut s = HeatSolver::new(2, 6, nu, |x| (PI * x[0]).sin() * (PI * x[1]).sin());
        s.advance_to(0.04);
        let decay = (-2.0 * nu * PI * PI * s.time()).exp();
        let g = s.snapshot();
        let got = g.interpolate(&[0.5, 0.5]);
        assert!(
            (got - decay).abs() < 5e-3,
            "centre {got} vs analytic {decay}"
        );
    }

    #[test]
    fn maximum_principle_holds() {
        let mut s = HeatSolver::new(2, 5, 1.0, |x| {
            (16.0 * x[0] * (1.0 - x[0]) * x[1] * (1.0 - x[1])).powi(2)
        });
        let initial_max = s.max_abs();
        for _ in 0..200 {
            s.step();
            assert!(s.max_abs() <= initial_max + 1e-12, "max principle violated");
        }
        // And diffusion actually decays the peak.
        assert!(s.max_abs() < initial_max * 0.9);
    }

    #[test]
    fn zero_field_stays_zero() {
        let mut s = HeatSolver::new(1, 5, 1.0, |_| 0.0);
        for _ in 0..50 {
            s.step();
        }
        assert_eq!(s.max_abs(), 0.0);
    }

    #[test]
    fn dt_respects_the_cfl_limit() {
        for d in 1..=3 {
            let s = HeatSolver::new(d, 6, 2.0, |_| 0.0);
            let h = 1.0 / 64.0;
            assert!(s.dt() <= h * h / (2.0 * d as f64 * 2.0));
        }
    }

    #[test]
    fn sweep_lattice_is_interpolated_exactly_at_nodes() {
        let ds =
            SweepDataset::generate(1, 5, |x| (PI * x[0]).sin(), &[0.0, 0.01, 0.02], &[0.2, 0.6]);
        assert_eq!(ds.dim(), 3);
        // At (t01, nu01) lattice corners, eval must reproduce the
        // snapshot interpolants.
        for (kt, t01) in [(0usize, 0.0f64), (1, 0.5), (2, 1.0)] {
            for (kn, nu01) in [(0usize, 0.0f64), (1, 1.0)] {
                let x = [0.375, t01, nu01];
                let direct = ds.snapshots[kn][kt].interpolate(&[0.375]);
                assert!((ds.eval(&x) - direct).abs() < 1e-14, "kt={kt} kn={kn}");
            }
        }
    }

    #[test]
    fn sweep_decays_in_time_and_faster_for_higher_nu() {
        let ds =
            SweepDataset::generate(1, 6, |x| (PI * x[0]).sin(), &[0.0, 0.02, 0.04], &[0.1, 1.0]);
        let centre_at = |t01: f64, nu01: f64| ds.eval(&[0.5, t01, nu01]);
        assert!(centre_at(1.0, 0.0) < centre_at(0.0, 0.0));
        assert!(centre_at(1.0, 1.0) < centre_at(1.0, 0.0));
    }

    #[test]
    fn sweep_feeds_the_compression_pipeline() {
        // The dataset vanishes on the *spatial* boundary but not on the
        // time/diffusivity axis boundaries — exactly the situation the
        // paper's §4.4 boundary extension exists for.
        use sg_core::boundary::BoundaryGrid;
        use sg_core::functions::halton_points;
        let ds = SweepDataset::generate(
            1,
            6,
            |x| (PI * x[0]).sin(),
            &[0.0, 0.01, 0.02, 0.03],
            &[0.2, 0.5, 1.0],
        );
        let mut grid: BoundaryGrid<f64> = BoundaryGrid::from_fn(3, 6, |x| ds.eval(x));
        grid.hierarchize();
        // The compressed representation reproduces the dataset closely.
        let mut worst = 0.0f64;
        for x in halton_points(3, 200).chunks_exact(3) {
            worst = worst.max((grid.evaluate(x) - ds.eval(x)).abs());
        }
        assert!(worst < 0.05, "compression error {worst}");
        // With far fewer coefficients than the full level-6 lattice over
        // all three axes that the sparse grid stands in for.
        let full = FullGrid::<f64>::total_points(3, 6).unwrap();
        assert!((grid.len() as u64) * 10 < full, "{} vs {full}", grid.len());
    }
}
