#![warn(missing_docs)]

//! # sg-adaptive — spatially adaptive sparse grids
//!
//! The paper's compact structure targets *regular* grids: the `gp2idx`
//! bijection requires the full simplex of subspaces. Its related work
//! (§7) positions hash-based structures as the representation of choice
//! when *adaptive refinement* is needed — "flexibility can be traded for
//! efficiency". This crate is that other side of the trade-off: a
//! hash-backed sparse grid that grows points only where the function
//! demands them, at ~an order of magnitude more bytes per point (see the
//! memory model in `sg-baselines`).
//!
//! The point set is always *downset-closed*: every 1-d hierarchical tree
//! ancestor of a stored point is stored too. That invariant makes
//! hierarchical surpluses well defined (`α_p = f(x_p) − u(x_p)` over the
//! already-present ancestors, independent of any finer points) and
//! enables the pruned dimension-recursive evaluation below.
//!
//! ```
//! use sg_adaptive::AdaptiveSparseGrid;
//!
//! // A sharp bump: regular grids waste points far away from it.
//! let f = |x: &[f64]| (-200.0 * ((x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2))).exp();
//! let mut g = AdaptiveSparseGrid::new(2);
//! g.refine_by_surplus(&f, 1e-3, 10_000, 12);
//! let err = (g.evaluate(&[0.3, 0.7]) - 1.0).abs();
//! assert!(err < 1e-2, "adaptive grid should resolve the bump: {err}");
//! ```

use sg_core::level::{hat, Index, Level};
use std::collections::HashMap;

/// Key: the packed `(level, index)` pair per dimension.
type Key = Box<[u64]>;

#[inline]
fn pack(l: Level, i: Index) -> u64 {
    ((l as u64) << 32) | i as u64
}

#[inline]
fn unpack(k: u64) -> (Level, Index) {
    ((k >> 32) as Level, k as u32)
}

/// The unique 1-d *tree* parent of `(l, i)` (the ancestor one level up on
/// the path from the root): `(l−1, (i±1)/2)` with the sign making the
/// index odd. `None` for the root `l = 0`.
#[inline]
pub fn tree_parent(l: Level, i: Index) -> Option<(Level, Index)> {
    if l == 0 {
        return None;
    }
    let k = if i % 4 == 1 {
        i.div_ceil(2)
    } else {
        (i - 1) / 2
    };
    Some((l - 1, k))
}

/// A spatially adaptive, hash-backed sparse grid with hierarchical
/// surpluses as values.
#[derive(Debug, Clone)]
pub struct AdaptiveSparseGrid {
    dim: usize,
    surpluses: HashMap<Key, f64>,
}

impl AdaptiveSparseGrid {
    /// A grid containing only the root point `l = 0, i = 1` (surplus 0;
    /// call a refinement method to populate it).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        let mut surpluses = HashMap::new();
        let root: Key = vec![pack(0, 1); dim].into_boxed_slice();
        surpluses.insert(root, 0.0);
        Self { dim, surpluses }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.surpluses.len()
    }

    /// True if only the root exists and carries a zero surplus.
    pub fn is_empty(&self) -> bool {
        self.surpluses.len() <= 1
    }

    /// Surplus at `(l, i)`, if the point exists.
    pub fn surplus(&self, l: &[Level], i: &[Index]) -> Option<f64> {
        let key: Key = l.iter().zip(i).map(|(&a, &b)| pack(a, b)).collect();
        self.surpluses.get(&key).copied()
    }

    /// True if the grid stores the point `(l, i)`.
    pub fn contains(&self, l: &[Level], i: &[Index]) -> bool {
        self.surplus(l, i).is_some()
    }

    /// Iterate over all points as `(levels, indices, surplus)`.
    pub fn points(&self) -> impl Iterator<Item = (Vec<Level>, Vec<Index>, f64)> + '_ {
        self.surpluses.iter().map(|(k, &s)| {
            let (l, i): (Vec<Level>, Vec<Index>) = k.iter().map(|&c| unpack(c)).unzip();
            (l, i, s)
        })
    }

    /// Spatial coordinates of a stored point key.
    fn coords_of(key: &[u64], out: &mut [f64]) {
        for (t, &c) in key.iter().enumerate() {
            let (l, i) = unpack(c);
            out[t] = sg_core::level::coordinate(l, i);
        }
    }

    /// Evaluate the interpolant at `x ∈ [0,1]^d` via dimension-recursive
    /// descent, pruning subtrees whose prefix point is absent (valid
    /// because the point set is downset-closed).
    pub fn evaluate(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "query point dimension mismatch");
        assert!(
            x.iter().all(|&v| (0.0..=1.0).contains(&v)),
            "query point outside the unit domain"
        );
        let mut key: Key = vec![pack(0, 1); self.dim].into_boxed_slice();
        self.eval_dim(x, 0, &mut key, 1.0)
    }

    fn eval_dim(&self, x: &[f64], t: usize, key: &mut Key, prod: f64) -> f64 {
        let mut res = 0.0;
        let (mut lt, mut it) = (0 as Level, 1 as Index);
        loop {
            key[t] = pack(lt, it);
            // Downset pruning: if the prefix point (dims > t at the root)
            // is absent, no stored point extends this 1-d prefix.
            if !self.surpluses.contains_key(key as &Key) {
                break;
            }
            let b = hat(lt, it, x[t]);
            if b == 0.0 {
                break;
            }
            if t == self.dim - 1 {
                res += prod * b * self.surpluses[key as &Key];
            } else {
                res += self.eval_dim(x, t + 1, key, prod * b);
                // Restore trailing dimensions to the root for the prefix
                // membership test of the next chain node.
                for u in t + 1..self.dim {
                    key[u] = pack(0, 1);
                }
                key[t] = pack(lt, it);
            }
            // Descend the 1-d tree towards x[t].
            let centre = sg_core::level::coordinate(lt, it);
            let side = if x[t] < centre {
                sg_core::level::Side::Left
            } else {
                sg_core::level::Side::Right
            };
            let (nl, ni) = sg_core::level::hierarchical_child(lt, it, side);
            lt = nl;
            it = ni;
        }
        key[t] = pack(0, 1);
        res
    }

    /// Insert a point (and, recursively, every missing ancestor), setting
    /// each new surplus to `f(x_p) − u(x_p)`. Ancestors are inserted
    /// first, so each surplus is final the moment it is written.
    pub fn insert_with_ancestors(&mut self, l: &[Level], i: &[Index], f: &impl Fn(&[f64]) -> f64) {
        self.ensure_root(f);
        let key: Key = l.iter().zip(i).map(|(&a, &b)| pack(a, b)).collect();
        self.insert_key(key, f);
    }

    /// The root inserted by [`Self::new`] carries a placeholder surplus
    /// of 0.0, and [`Self::insert_key`] treats present keys as final —
    /// so before the first real insertion the root's surplus must be
    /// computed, or every interpolant built by `bootstrap` /
    /// `insert_with_ancestors` on a fresh grid is off by `f(centre)`.
    /// (Found by the sg-fuzz differential oracle; `refine_by_surplus`
    /// carried its own copy of this fix-up, which now lives here.)
    fn ensure_root(&mut self, f: &impl Fn(&[f64]) -> f64) {
        let root: Key = vec![pack(0, 1); self.dim].into_boxed_slice();
        if self.surpluses.len() == 1 && self.surpluses[&root] == 0.0 {
            let mut x = vec![0.0; self.dim];
            Self::coords_of(&root, &mut x);
            let s = f(&x);
            self.surpluses.insert(root, s);
        }
    }

    fn insert_key(&mut self, key: Key, f: &impl Fn(&[f64]) -> f64) {
        if self.surpluses.contains_key(&key) {
            return;
        }
        // Ensure the tree parent in every dimension first.
        for t in 0..self.dim {
            let (l, i) = unpack(key[t]);
            if let Some((pl, pi)) = tree_parent(l, i) {
                let mut parent = key.clone();
                parent[t] = pack(pl, pi);
                self.insert_key(parent, f);
            }
        }
        let mut x = vec![0.0; self.dim];
        Self::coords_of(&key, &mut x);
        let surplus = f(&x) - self.evaluate(&x);
        self.surpluses.insert(key, surplus);
    }

    /// Seed the grid with the full regular sparse grid of level sum
    /// `≤ levels` (surpluses computed from `f`). Adaptive refinement
    /// needs such a bootstrap: a feature invisible at the few coarse
    /// points would otherwise never trigger refinement.
    pub fn bootstrap(&mut self, levels: Level, f: &impl Fn(&[f64]) -> f64) {
        self.ensure_root(f);
        let spec = sg_core::level::GridSpec::new(self.dim, levels as usize + 1);
        let mut points: Vec<(Vec<Level>, Vec<Index>)> = Vec::new();
        sg_core::iter::for_each_point(&spec, |_, l, i| {
            points.push((l.to_vec(), i.to_vec()));
        });
        // for_each_point visits coarse groups first, so ancestors land
        // before descendants and every surplus is final on insert.
        for (l, i) in points {
            self.insert_with_ancestors(&l, &i, f);
        }
    }

    /// Surplus-driven refinement: repeatedly take the stored point with
    /// the largest absolute surplus that still has missing children, and
    /// add its `2·d` tree children — until every surplus is below
    /// `threshold`, `max_points` is reached, or all candidates sit at
    /// `max_level` in the refined dimension.
    ///
    /// A fresh grid is first bootstrapped with the regular sparse grid of
    /// level sum ≤ 2 (see [`Self::bootstrap`]).
    ///
    /// Returns the number of refinement steps performed.
    pub fn refine_by_surplus(
        &mut self,
        f: &impl Fn(&[f64]) -> f64,
        threshold: f64,
        max_points: usize,
        max_level: Level,
    ) -> usize {
        // Seed a fresh grid (placeholder root only) with the coarse
        // regular grid; `bootstrap` computes the root surplus itself.
        let root: Key = vec![pack(0, 1); self.dim].into_boxed_slice();
        if self.surpluses.len() == 1 && self.surpluses[&root] == 0.0 {
            self.bootstrap(max_level.min(2), f);
        }

        let mut steps = 0;
        loop {
            if self.surpluses.len() >= max_points {
                break;
            }
            // Highest-surplus refinable point.
            let candidate = self
                .surpluses
                .iter()
                .filter(|(_, s)| s.abs() > threshold)
                .filter(|(k, _)| self.has_missing_child(k, max_level))
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .map(|(k, _)| k.clone());
            let Some(key) = candidate else { break };
            for t in 0..self.dim {
                let (l, i) = unpack(key[t]);
                if l >= max_level {
                    continue;
                }
                for side in [sg_core::level::Side::Left, sg_core::level::Side::Right] {
                    let (cl, ci) = sg_core::level::hierarchical_child(l, i, side);
                    let mut child = key.clone();
                    child[t] = pack(cl, ci);
                    self.insert_key(child, f);
                }
            }
            steps += 1;
        }
        steps
    }

    fn has_missing_child(&self, key: &Key, max_level: Level) -> bool {
        for t in 0..self.dim {
            let (l, i) = unpack(key[t]);
            if l >= max_level {
                continue;
            }
            for side in [sg_core::level::Side::Left, sg_core::level::Side::Right] {
                let (cl, ci) = sg_core::level::hierarchical_child(l, i, side);
                let mut child = key.clone();
                child[t] = pack(cl, ci);
                if !self.surpluses.contains_key(&child) {
                    return true;
                }
            }
        }
        false
    }

    /// Verify the downset invariant (used by tests and debug assertions):
    /// every tree ancestor of every point is present.
    pub fn is_downset_closed(&self) -> bool {
        self.surpluses.keys().all(|key| {
            (0..self.dim).all(|t| {
                let (l, i) = unpack(key[t]);
                match tree_parent(l, i) {
                    None => true,
                    Some((pl, pi)) => {
                        let mut parent = key.clone();
                        parent[t] = pack(pl, pi);
                        self.surpluses.contains_key(&parent)
                    }
                }
            })
        })
    }

    /// Largest level sum of any stored point.
    pub fn max_level_sum(&self) -> usize {
        self.surpluses
            .keys()
            .map(|k| k.iter().map(|&c| unpack(c).0 as usize).sum())
            .max()
            .unwrap_or(0)
    }

    /// Modelled memory footprint (hash-table layout; see
    /// `sg_baselines::memory_model` for the constants).
    pub fn memory_bytes(&self) -> usize {
        // Entry: chain ptr + alloc header + key fat ptr + 8·d payload +
        // 8 value + bucket slot.
        self.surpluses.len() * (8 + 16 + 16 + 8 * self.dim + 8 + 8) + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_core::evaluate::evaluate as evaluate_regular;
    use sg_core::functions::halton_points;
    use sg_core::grid::CompactGrid;
    use sg_core::hierarchize::hierarchize;
    use sg_core::level::GridSpec;

    /// Brute-force interpolant: Σ surplus · Π hat — the definition the
    /// pruned recursion must match.
    fn brute_force(g: &AdaptiveSparseGrid, x: &[f64]) -> f64 {
        g.points()
            .map(|(l, i, s)| {
                s * l
                    .iter()
                    .zip(&i)
                    .zip(x)
                    .map(|((&lt, &it), &xt)| hat(lt, it, xt))
                    .product::<f64>()
            })
            .sum()
    }

    #[test]
    fn tree_parent_chain() {
        assert_eq!(tree_parent(0, 1), None);
        assert_eq!(tree_parent(1, 1), Some((0, 1)));
        assert_eq!(tree_parent(1, 3), Some((0, 1)));
        assert_eq!(tree_parent(2, 1), Some((1, 1)));
        assert_eq!(tree_parent(2, 3), Some((1, 1)));
        assert_eq!(tree_parent(2, 5), Some((1, 3)));
        assert_eq!(tree_parent(2, 7), Some((1, 3)));
    }

    #[test]
    fn bootstrap_on_a_fresh_grid_computes_the_root_surplus() {
        // Regression (found by the sg-fuzz differential oracle): the
        // placeholder root surplus from `new()` used to survive
        // `bootstrap`/`insert_with_ancestors`, shifting every
        // interpolant by f(centre). The bootstrap of a regular shape
        // must now reproduce the compact grid's interpolant.
        let f = |x: &[f64]| 0.3 + x.iter().map(|&v| 1.0 + v * v).product::<f64>();
        let mut g = AdaptiveSparseGrid::new(2);
        g.bootstrap(2, &f);
        assert_eq!(g.surplus(&[0, 0], &[1, 1]), Some(f(&[0.5, 0.5])));

        let spec = GridSpec::new(2, 3);
        let mut reg = CompactGrid::<f64>::from_fn(spec, f);
        hierarchize(&mut reg);
        for x in halton_points(2, 50).chunks_exact(2) {
            let a = g.evaluate(x);
            let b = evaluate_regular(&reg, x);
            assert!((a - b).abs() < 1e-12, "x={x:?}: {a} vs {b}");
        }

        // Same blind spot via direct insertion on a fresh grid.
        let mut h = AdaptiveSparseGrid::new(1);
        h.insert_with_ancestors(&[1], &[1], &f);
        assert_eq!(h.surplus(&[0], &[1]), Some(f(&[0.5])));
    }

    #[test]
    fn insertion_maintains_downset_closure() {
        let f = |x: &[f64]| x[0] + x[1];
        let mut g = AdaptiveSparseGrid::new(2);
        g.insert_with_ancestors(&[3, 2], &[5, 3], &f);
        assert!(g.is_downset_closed());
        // The deep point and a few ancestors exist.
        assert!(g.contains(&[3, 2], &[5, 3]));
        assert!(g.contains(&[2, 2], &[3, 3]));
        assert!(g.contains(&[0, 0], &[1, 1]));
    }

    #[test]
    fn evaluation_matches_brute_force() {
        let f = |x: &[f64]| (3.0 * x[0]).sin() * x[1] * x[1] + x[0];
        let mut g = AdaptiveSparseGrid::new(2);
        g.refine_by_surplus(&f, 1e-4, 300, 8);
        for x in halton_points(2, 100).chunks_exact(2) {
            let a = g.evaluate(x);
            let b = brute_force(&g, x);
            assert!((a - b).abs() < 1e-12, "x={x:?}: {a} vs {b}");
        }
    }

    #[test]
    fn interpolation_exact_at_stored_points() {
        let f = |x: &[f64]| x[0] * (1.0 - x[0]) * (0.5 + x[1]);
        let mut g = AdaptiveSparseGrid::new(2);
        g.refine_by_surplus(&f, 1e-5, 200, 7);
        for (l, i, _) in g.points().collect::<Vec<_>>() {
            let x: Vec<f64> = l
                .iter()
                .zip(&i)
                .map(|(&lt, &it)| sg_core::level::coordinate(lt, it))
                .collect();
            assert!((g.evaluate(&x) - f(&x)).abs() < 1e-12, "at {x:?}");
        }
    }

    #[test]
    fn full_refinement_recovers_the_regular_grid() {
        // Refining everything up to level sum L−1 must reproduce the
        // regular sparse grid and its surpluses exactly... with the tree
        // (not chain) parent closure the point set is the classic sparse
        // grid of tree-depth; compare interpolants instead of sets.
        let f = |x: &[f64]| x.iter().map(|&v| 4.0 * v * (1.0 - v)).product::<f64>();
        let mut g = AdaptiveSparseGrid::new(2);
        g.refine_by_surplus(&f, 0.0, 100_000, 3);
        // All points with |l|₁ ≤ ... every point of the level-4 regular
        // grid whose per-dim level ≤ 3 and that the refinement reached.
        let spec = GridSpec::new(2, 4);
        let mut reg = CompactGrid::<f64>::from_fn(spec, f);
        hierarchize(&mut reg);
        // The adaptive grid contains at least the regular grid's points
        // up to the cap, with identical surpluses.
        sg_core::iter::for_each_point(&spec, |idx, l, i| {
            if l.iter().all(|&v| v <= 3) {
                if let Some(s) = g.surplus(l, i) {
                    let expect = reg.values()[idx as usize];
                    assert!((s - expect).abs() < 1e-12, "surplus at {l:?},{i:?}");
                }
            }
        });
        // And the interpolants agree where both have full support.
        for x in halton_points(2, 50).chunks_exact(2) {
            let a = g.evaluate(x);
            let b = evaluate_regular(&reg, x);
            assert!((a - b).abs() < 0.05, "x={x:?}: {a} vs {b}");
        }
    }

    #[test]
    fn adaptivity_beats_regular_grids_on_localized_features() {
        // A sharp off-center bump: the adaptive grid reaches a given
        // accuracy with far fewer points than the regular grid.
        let f = |x: &[f64]| (-300.0 * ((x[0] - 0.3).powi(2) + (x[1] - 0.71).powi(2))).exp();
        let probes = halton_points(2, 400);
        let err_of = |g: &AdaptiveSparseGrid| {
            probes
                .chunks_exact(2)
                .map(|x| (g.evaluate(x) - f(x)).abs())
                .fold(0.0f64, f64::max)
        };

        let mut adaptive = AdaptiveSparseGrid::new(2);
        adaptive.refine_by_surplus(&f, 5e-3, 4000, 12);
        let adaptive_err = err_of(&adaptive);

        // Regular grid with a similar point budget.
        let mut level = 1;
        while GridSpec::new(2, level + 1).num_points() <= adaptive.len() as u64 {
            level += 1;
        }
        let spec = GridSpec::new(2, level);
        let mut reg = CompactGrid::<f64>::from_fn(spec, f);
        hierarchize(&mut reg);
        let reg_err = probes
            .chunks_exact(2)
            .map(|x| (evaluate_regular(&reg, x) - f(x)).abs())
            .fold(0.0f64, f64::max);

        assert!(
            adaptive_err < reg_err,
            "adaptive ({} pts, err {adaptive_err}) should beat regular ({} pts, err {reg_err})",
            adaptive.len(),
            spec.num_points()
        );
    }

    #[test]
    fn surpluses_are_stable_under_further_insertion() {
        let f = |x: &[f64]| x[0] * x[0] + x[1];
        let mut g = AdaptiveSparseGrid::new(2);
        g.insert_with_ancestors(&[2, 0], &[3, 1], &f);
        let before = g.surplus(&[2, 0], &[3, 1]).unwrap();
        g.insert_with_ancestors(&[3, 3], &[7, 5], &f);
        let after = g.surplus(&[2, 0], &[3, 1]).unwrap();
        assert_eq!(
            before, after,
            "finer points must not change coarser surpluses"
        );
    }

    #[test]
    fn refinement_respects_caps() {
        let f = |x: &[f64]| x[0];
        let mut g = AdaptiveSparseGrid::new(3);
        g.refine_by_surplus(&f, 0.0, 50, 10);
        assert!(
            g.len() <= 50 + 6,
            "max_points roughly respected: {}",
            g.len()
        );
        let mut h = AdaptiveSparseGrid::new(1);
        h.refine_by_surplus(&f, 0.0, 10_000, 2);
        assert!(h.max_level_sum() <= 2);
    }

    #[test]
    fn memory_per_point_exceeds_compact() {
        let f = |x: &[f64]| x[0] + x[1];
        let mut g = AdaptiveSparseGrid::new(2);
        g.refine_by_surplus(&f, 0.0, 100, 4);
        let per_point = g.memory_bytes() as f64 / g.len() as f64;
        assert!(
            per_point > 8.0 * 2.0,
            "hash-backed storage must cost well over one value per point: {per_point}"
        );
    }
}
