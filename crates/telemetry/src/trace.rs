//! Per-thread trace-event ring buffers and Chrome Trace Event export.
//!
//! Tracing answers the question aggregate counters cannot: *when* did
//! each worker run, and what was everyone else doing at that moment?
//! The design keeps the record path free of locks so instrumenting the
//! inner parallel loops of `sg-par` does not serialize them:
//!
//! - [`record`] appends a completed interval to a **thread-local ring
//!   buffer** (a `RefCell<Vec>` — no atomics, no mutexes, no allocation
//!   after the ring fills). When the ring reaches its capacity the
//!   oldest events are overwritten and counted in [`dropped`].
//! - [`flush_thread`] drains the calling thread's ring into a global
//!   pool under a mutex — once per worker closure, not per event.
//!   `sg-par` workers call it right before returning (thread-exit
//!   destructors also flush, but only as a backstop: scope joins can
//!   observe a thread as finished before its TLS destructors run).
//! - [`take_events`] drains the pool plus the calling thread's own ring
//!   and returns the events sorted by start time; [`chrome_trace`]
//!   renders them as a Chrome Trace Event Format document that loads in
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! Tracing is **off by default** even in telemetry builds: until
//! [`enable`] is called, [`record`] is a single relaxed load and a
//! branch. `sgtool profile` and the trace tests are the intended
//! enablers.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use sg_json::{json, Value};

/// One completed interval on some thread's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name, dotted like instrument names (e.g. `par.worker`).
    pub name: &'static str,
    /// Logical lane the event renders on: `sg-par` uses 0 for the
    /// coordinating thread and `slot + 1` for worker slot `slot`.
    pub tid: u64,
    /// Start time in nanoseconds since the trace epoch (pinned by
    /// [`enable`]).
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional single key/value argument distinguishing instances of
    /// the same region, e.g. `("group", 5)` for a level-group sweep.
    pub arg: Option<(&'static str, u64)>,
}

/// Default per-thread ring capacity, in events.
pub const DEFAULT_CAPACITY: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn pool() -> &'static Mutex<Vec<TraceEvent>> {
    static POOL: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct LocalRing {
    events: Vec<TraceEvent>,
    /// Overwrite cursor once the ring is full.
    next: usize,
}

impl Drop for LocalRing {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            if let Ok(mut pool) = pool().lock() {
                pool.append(&mut self.events);
            }
        }
    }
}

thread_local! {
    static RING: RefCell<LocalRing> = const {
        RefCell::new(LocalRing {
            events: Vec::new(),
            next: 0,
        })
    };
}

/// Turn tracing on. The first call pins the trace epoch that all
/// [`TraceEvent::ts_ns`] values are relative to.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn tracing off. Buffered events are kept until [`take_events`] or
/// [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether [`record`] currently buffers events. Instrumentation sites
/// should check this before calling `Instant::now()` so a non-profiled
/// run pays one load per region, not per-event clock reads.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Set the per-thread ring capacity (minimum 1). Applies to subsequent
/// recording; rings that already hold more events keep them.
pub fn set_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

/// Number of events overwritten because a thread's ring was full, since
/// the last [`clear`]. A nonzero value means the trace shows the most
/// recent window of each thread, not the whole run.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Record a completed `[start, end]` interval on the calling thread's
/// ring buffer. No-op unless tracing is [`enable`]d. Lock-free: the only
/// shared-state touch is a relaxed load of the enabled flag (plus one
/// relaxed increment if the ring overflows).
#[inline]
pub fn record(
    name: &'static str,
    tid: u64,
    start: Instant,
    end: Instant,
    arg: Option<(&'static str, u64)>,
) {
    if !is_enabled() {
        return;
    }
    let ep = epoch();
    let ev = TraceEvent {
        name,
        tid,
        ts_ns: start.duration_since(ep).as_nanos() as u64,
        dur_ns: end.duration_since(start).as_nanos() as u64,
        arg,
    };
    RING.with(|r| {
        let mut r = r.borrow_mut();
        let cap = CAPACITY.load(Ordering::Relaxed).max(1);
        if r.events.len() < cap {
            r.events.push(ev);
        } else {
            let at = r.next % cap.min(r.events.len());
            r.events[at] = ev;
            r.next = at + 1;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Drain the calling thread's ring into the global pool. Worker threads
/// must call this as the last thing in their closure: thread-local
/// destructors are **not** guaranteed to have run by the time
/// `std::thread::scope` observes the thread as finished, so relying on
/// the exit-time flush alone can lose a ring to that race. The `Drop`
/// flush still exists as a backstop for threads that never get the
/// explicit call.
pub fn flush_thread() {
    RING.with(|r| {
        let mut r = r.borrow_mut();
        if !r.events.is_empty() {
            pool().lock().unwrap().append(&mut r.events);
        }
        r.next = 0;
    });
}

/// Drain every flushed ring plus the calling thread's own, returning the
/// events sorted by start time (ties broken by lane). Events belonging
/// to threads that are still running and have not called
/// [`flush_thread`] are **not** included.
pub fn take_events() -> Vec<TraceEvent> {
    let mut events: Vec<TraceEvent> = std::mem::take(&mut *pool().lock().unwrap());
    RING.with(|r| {
        let mut r = r.borrow_mut();
        events.append(&mut r.events);
        r.next = 0;
    });
    events.sort_by_key(|e| (e.ts_ns, e.tid));
    events
}

/// Discard all buffered events (global pool and the calling thread's
/// ring) and zero the [`dropped`] counter.
pub fn clear() {
    pool().lock().unwrap().clear();
    RING.with(|r| {
        let mut r = r.borrow_mut();
        r.events.clear();
        r.next = 0;
    });
    DROPPED.store(0, Ordering::Relaxed);
}

/// Render events as a Chrome Trace Event Format document:
///
/// ```json
/// { "traceEvents": [ { "name": "par.worker", "ph": "X", "cat": "sg",
///                      "pid": 1, "tid": 2, "ts": 12.5, "dur": 3.75,
///                      "args": { "group": 5 } }, ... ],
///   "displayTimeUnit": "ms" }
/// ```
///
/// Every event is a complete (`"ph": "X"`) event; `ts` and `dur` are
/// microseconds with fractional nanosecond precision, per the format
/// spec. Viewers ignore unknown top-level keys, so callers may attach
/// extra metadata (provenance, region reports) beside `traceEvents`.
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let rendered: Vec<Value> = events
        .iter()
        .map(|e| {
            let mut ev = json!({
                "name": e.name,
                "ph": "X",
                "cat": "sg",
                "pid": 1,
                "tid": e.tid as f64,
                "ts": e.ts_ns as f64 / 1000.0,
                "dur": e.dur_ns as f64 / 1000.0,
            });
            let mut args = json!({});
            if let Some((k, v)) = e.arg {
                args[k] = Value::from(v as f64);
            }
            ev["args"] = args;
            ev
        })
        .collect();
    let mut doc = json!({ "displayTimeUnit": "ms" });
    doc["traceEvents"] = Value::Array(rendered);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests that enable/clear the global trace state live in the
    // `tests/trace.rs` integration test (its own process); here we only
    // exercise the pure rendering path.

    #[test]
    fn chrome_trace_document_shape() {
        let events = vec![
            TraceEvent {
                name: "par.worker",
                tid: 1,
                ts_ns: 2500,
                dur_ns: 1000,
                arg: Some(("group", 5)),
            },
            TraceEvent {
                name: "par.region",
                tid: 0,
                ts_ns: 2000,
                dur_ns: 4000,
                arg: None,
            },
        ];
        let doc = chrome_trace(&events);
        let evs = doc["traceEvents"].as_array().expect("array");
        assert_eq!(evs.len(), 2);
        for ev in evs {
            assert_eq!(ev["ph"], "X");
            assert_eq!(ev["cat"], "sg");
            assert!(ev["ts"].as_f64().is_some());
            assert!(ev["dur"].as_f64().is_some());
            assert!(ev["tid"].as_u64().is_some());
        }
        assert_eq!(evs[0]["ts"], 2.5);
        assert_eq!(evs[0]["dur"], 1.0);
        assert_eq!(evs[0]["args"]["group"], 5u64);
        // Must survive the round-trip to disk.
        let reparsed = sg_json::parse(&doc.to_string()).unwrap();
        assert_eq!(reparsed["traceEvents"][1]["name"], "par.region");
    }
}
