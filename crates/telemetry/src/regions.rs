//! Per-parallel-region load-imbalance accounting.
//!
//! The paper's Fig. 11 speedup curves flatten exactly where the coarse
//! level groups stop having enough points to feed every core — a
//! *load-imbalance* effect that aggregate barrier-wait totals cannot
//! localize. This module keeps, for every `(label, arg)` pair (e.g. the
//! hierarchization sweep of level group 5), the accumulated busy and
//! barrier-wait nanoseconds **per worker slot**, from which
//! [`RegionStat::imbalance`] derives the max/mean busy ratio that
//! diagnoses the flattening.
//!
//! Recording happens once per region execution, on the coordinating
//! thread after the workers have joined — a single mutex acquisition
//! outside the parallel section, so the hot loops are untouched.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use sg_json::{json, Value};

/// Aggregated per-worker busy/wait breakdown for one parallel region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionStat {
    /// Region label, dotted like instrument names
    /// (e.g. `core.hierarchize.sweep`).
    pub label: &'static str,
    /// Distinguishing argument, e.g. `("group", 5)` — one entry per
    /// level group rather than one blurred total.
    pub arg: Option<(&'static str, u64)>,
    /// How many times this region executed.
    pub count: u64,
    /// Accumulated busy nanoseconds, indexed by worker slot.
    pub busy_ns: Vec<u64>,
    /// Accumulated barrier-wait nanoseconds, indexed by worker slot.
    pub wait_ns: Vec<u64>,
    /// Accumulated work items (chunks / indices) claimed, indexed by
    /// worker slot. Under dynamic chunk-claiming this shows *where* the
    /// work went, which busy time alone cannot (a slot can be busy on
    /// few large chunks or many small ones).
    pub chunks: Vec<u64>,
}

impl RegionStat {
    /// Load-imbalance ratio: `max(busy) / mean(busy)` across worker
    /// slots. `1.0` is perfectly balanced; `n` (the worker count) means
    /// one slot did all the work. Defined as `1.0` when no slot did any
    /// measurable work.
    pub fn imbalance(&self) -> f64 {
        let n = self.busy_ns.len();
        if n == 0 {
            return 1.0;
        }
        let total: u64 = self.busy_ns.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.busy_ns.iter().max().unwrap();
        max as f64 * n as f64 / total as f64
    }

    /// Busy nanoseconds summed over all worker slots.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }

    /// Barrier-wait nanoseconds summed over all worker slots.
    pub fn total_wait_ns(&self) -> u64 {
        self.wait_ns.iter().sum()
    }

    /// Display key: `label` alone, or `label[k=v]` when the region has a
    /// distinguishing argument.
    pub fn key(&self) -> String {
        match self.arg {
            Some((k, v)) => format!("{}[{}={}]", self.label, k, v),
            None => self.label.to_string(),
        }
    }
}

type Key = (&'static str, Option<(&'static str, u64)>);

fn table() -> &'static Mutex<BTreeMap<Key, RegionStat>> {
    static TABLE: OnceLock<Mutex<BTreeMap<Key, RegionStat>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Merge one execution of a region: `busy[s]` and `wait[s]` are the busy
/// and barrier-wait nanoseconds of worker slot `s`, and `chunks[s]` the
/// number of work items slot `s` claimed. Successive calls with the same
/// `(label, arg)` accumulate; a call with more slots than seen before
/// widens the record (shorter earlier runs count as zero for the new
/// slots).
pub fn record_region(
    label: &'static str,
    arg: Option<(&'static str, u64)>,
    busy: &[u64],
    wait: &[u64],
    chunks: &[u64],
) {
    let mut table = table().lock().unwrap();
    let stat = table.entry((label, arg)).or_insert_with(|| RegionStat {
        label,
        arg,
        count: 0,
        busy_ns: Vec::new(),
        wait_ns: Vec::new(),
        chunks: Vec::new(),
    });
    stat.count += 1;
    if stat.busy_ns.len() < busy.len() {
        stat.busy_ns.resize(busy.len(), 0);
    }
    if stat.wait_ns.len() < wait.len() {
        stat.wait_ns.resize(wait.len(), 0);
    }
    if stat.chunks.len() < chunks.len() {
        stat.chunks.resize(chunks.len(), 0);
    }
    for (acc, &ns) in stat.busy_ns.iter_mut().zip(busy) {
        *acc += ns;
    }
    for (acc, &ns) in stat.wait_ns.iter_mut().zip(wait) {
        *acc += ns;
    }
    for (acc, &n) in stat.chunks.iter_mut().zip(chunks) {
        *acc += n;
    }
}

/// Snapshot of every recorded region, in `(label, arg)` order.
pub fn report() -> Vec<RegionStat> {
    table().lock().unwrap().values().cloned().collect()
}

/// Forget all recorded regions.
pub fn clear() {
    table().lock().unwrap().clear();
}

/// JSON render used by `sgtool profile` and the metrics report:
///
/// ```json
/// { "core.hierarchize.sweep[group=5]": {
///     "count": 10, "workers": 4,
///     "busy_ns": [..], "wait_ns": [..], "chunks": [..],
///     "total_busy_ns": 1000, "total_wait_ns": 40,
///     "imbalance": 1.08 }, ... }
/// ```
pub fn to_json(stats: &[RegionStat]) -> Value {
    let mut out = json!({});
    for s in stats {
        let mut entry = json!({
            "count": s.count as f64,
            "workers": s.busy_ns.len() as f64,
            "total_busy_ns": s.total_busy_ns() as f64,
            "total_wait_ns": s.total_wait_ns() as f64,
            "imbalance": s.imbalance(),
        });
        entry["busy_ns"] = Value::Array(s.busy_ns.iter().map(|&n| Value::from(n as f64)).collect());
        entry["wait_ns"] = Value::Array(s.wait_ns.iter().map(|&n| Value::from(n as f64)).collect());
        entry["chunks"] = Value::Array(s.chunks.iter().map(|&n| Value::from(n as f64)).collect());
        out.set(&s.key(), entry);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests never call `clear()` and use labels unique to this
    // module, so they are safe against the process-global table being
    // shared with other tests.

    #[test]
    fn imbalance_ratio() {
        let balanced = RegionStat {
            label: "test.regions.balanced",
            arg: None,
            count: 1,
            busy_ns: vec![100, 100, 100, 100],
            wait_ns: vec![0, 0, 0, 0],
            chunks: vec![8, 8, 8, 8],
        };
        assert!((balanced.imbalance() - 1.0).abs() < 1e-12);

        let skewed = RegionStat {
            label: "test.regions.skewed",
            arg: None,
            count: 1,
            busy_ns: vec![400, 0, 0, 0],
            wait_ns: vec![0, 300, 300, 300],
            chunks: vec![32, 0, 0, 0],
        };
        assert!((skewed.imbalance() - 4.0).abs() < 1e-12);
        assert_eq!(skewed.total_busy_ns(), 400);
        assert_eq!(skewed.total_wait_ns(), 900);

        let idle = RegionStat {
            label: "test.regions.idle",
            arg: None,
            count: 1,
            busy_ns: vec![0, 0],
            wait_ns: vec![0, 0],
            chunks: vec![0, 0],
        };
        assert_eq!(idle.imbalance(), 1.0);
    }

    #[test]
    fn record_accumulates_per_slot_and_widens() {
        record_region(
            "test.regions.accum",
            Some(("group", 3)),
            &[10, 20],
            &[1, 2],
            &[3, 4],
        );
        record_region(
            "test.regions.accum",
            Some(("group", 3)),
            &[5, 5, 40],
            &[0, 0, 9],
            &[1, 1, 6],
        );
        // A different arg is a different entry.
        record_region("test.regions.accum", Some(("group", 4)), &[7], &[0], &[2]);

        let all = report();
        let g3 = all
            .iter()
            .find(|s| s.label == "test.regions.accum" && s.arg == Some(("group", 3)))
            .expect("group 3 recorded");
        assert_eq!(g3.count, 2);
        assert_eq!(g3.busy_ns, vec![15, 25, 40]);
        assert_eq!(g3.wait_ns, vec![1, 2, 9]);
        assert_eq!(g3.chunks, vec![4, 5, 6]);
        let g4 = all
            .iter()
            .find(|s| s.label == "test.regions.accum" && s.arg == Some(("group", 4)))
            .expect("group 4 recorded");
        assert_eq!(g4.count, 1);
        assert_eq!(g4.key(), "test.regions.accum[group=4]");

        let json = to_json(&all);
        let entry = &json["test.regions.accum[group=3]"];
        assert_eq!(entry["count"], 2u64);
        assert_eq!(entry["workers"], 3u64);
        assert_eq!(entry["busy_ns"][2], 40u64);
        assert_eq!(entry["chunks"][2], 6u64);
        assert!(entry["imbalance"].as_f64().unwrap() >= 1.0);
    }
}
