//! Flight recorder: a fixed-capacity, lock-free time-series ring.
//!
//! Counters and histograms answer "how much, in total"; the trace ring
//! answers "when, exactly, at microsecond grain, for a short window".
//! The flight recorder sits between the two: a [`TimeSeries`] ring holds
//! periodic snapshots of **every registered instrument** (one frame per
//! [`TimeSeries::tick`]), so a long-running process — a multi-hour bench
//! sweep, or the future `sgd` daemon — can be observed over wall time
//! without unbounded memory and without stopping it. `sgtool flight`
//! drives a workload under a cadenced sampler and exports the ring;
//! [`crate::Report::timeseries`] is the programmatic export.
//!
//! ## Design
//!
//! The ring is a flat array of `AtomicU64` cells: `capacity` rows, each
//! holding a seqlock word, a timestamp, a column count, and one value
//! per schema column. The writer (whoever calls [`TimeSeries::tick`] —
//! normally the single [`Sampler`] thread; concurrent callers are
//! deduplicated by a try-lock and simply skip) marks the row odd,
//! stores the frame, and publishes it even; readers copy a row and
//! discard it if the seqlock word changed underneath them. No reader or
//! writer ever blocks on the ring, and a torn read is detected, never
//! returned. When the ring wraps, the oldest frames are overwritten and
//! counted in [`TimeSeriesReport::dropped`].
//!
//! The schema is **self-describing and append-only**: the first time an
//! instrument shows up in a snapshot it is assigned one or more columns
//! (`name`, `kind` ∈ `counter|span|histogram`, `unit` ∈
//! `count|ns|bytes` inferred from the dotted-name suffix). Frames
//! recorded before a column existed carry fewer values; the export pads
//! them with `null`, never with invented zeros.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use sg_json::{json, Value};

use crate::{HistogramStat, Report};

/// Hard cap on schema columns a [`TimeSeries`] tracks. Instruments past
/// the cap are counted in [`TimeSeriesReport::columns_dropped`] rather
/// than silently ignored. The current workspace registers ~200 columns
/// at full instrumentation; 512 leaves generous headroom.
pub const MAX_COLUMNS: usize = 512;

/// Default ring capacity, in frames (~2 MiB of cells at [`MAX_COLUMNS`]).
pub const DEFAULT_FRAMES: usize = 512;

/// Cells per row ahead of the column values: seqlock word, timestamp
/// (ns since the recorder was created), column count at write time.
const ROW_HEADER: usize = 3;

/// One schema column: a scalar projection of one instrument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDesc {
    /// Column name: the instrument's dotted name, plus a `.field`
    /// suffix for multi-column instruments (`.count`, `.total_ns`,
    /// `.sum`, `.p50`, `.p99`, `.max`).
    pub name: String,
    /// Instrument kind: `"counter"`, `"span"`, or `"histogram"`.
    pub kind: &'static str,
    /// Value unit: `"count"`, `"ns"`, or `"bytes"`, inferred from the
    /// instrument's naming convention (`*_ns`, `*_bytes`).
    pub unit: &'static str,
}

/// One decoded frame of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Monotone frame number (frame 0 is the first tick ever taken).
    pub index: u64,
    /// Nanoseconds since the recorder was created.
    pub t_ns: u64,
    /// One value per schema column that existed at write time
    /// (`values.len() ≤ schema.len()`; later columns were not yet
    /// registered when this frame was recorded).
    pub values: Vec<u64>,
}

/// A consistent export of the ring: schema plus the surviving frames in
/// frame order.
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesReport {
    /// Column descriptors, in registration order.
    pub schema: Vec<ColumnDesc>,
    /// Frames still resident in the ring, oldest first.
    pub frames: Vec<Frame>,
    /// Ring capacity, in frames.
    pub capacity: usize,
    /// Total frames ever recorded (`recorded - frames.len()` of them
    /// have been overwritten).
    pub recorded: u64,
    /// Frames overwritten by ring wrap-around.
    pub dropped: u64,
    /// Instrument columns discarded because the schema hit
    /// [`MAX_COLUMNS`].
    pub columns_dropped: u64,
}

impl TimeSeriesReport {
    /// Serialize as self-describing JSON:
    ///
    /// ```json
    /// { "schema": [ { "name": "core.evaluate.points",
    ///                 "kind": "counter", "unit": "count" }, ... ],
    ///   "capacity": 512, "recorded": 40, "dropped": 0,
    ///   "frames": [ { "i": 0, "t_ns": 182134,
    ///                 "values": [0, 4096, null, ...] }, ... ] }
    /// ```
    ///
    /// Each frame's `values` array is aligned to `schema` order and
    /// padded with `null` for columns registered after the frame was
    /// recorded.
    pub fn to_json(&self) -> Value {
        let schema: Vec<Value> = self
            .schema
            .iter()
            .map(|c| json!({ "name": c.name.clone(), "kind": c.kind, "unit": c.unit }))
            .collect();
        let frames: Vec<Value> = self
            .frames
            .iter()
            .map(|f| {
                let values: Vec<Value> = (0..self.schema.len())
                    .map(|k| match f.values.get(k) {
                        Some(&v) => Value::from(v as f64),
                        None => Value::Null,
                    })
                    .collect();
                let mut fr = json!({ "i": f.index as f64, "t_ns": f.t_ns as f64 });
                fr["values"] = Value::Array(values);
                fr
            })
            .collect();
        let mut doc = json!({
            "capacity": self.capacity as f64,
            "recorded": self.recorded as f64,
            "dropped": self.dropped as f64,
            "columns_dropped": self.columns_dropped as f64,
        });
        doc["schema"] = Value::Array(schema);
        doc["frames"] = Value::Array(frames);
        doc
    }

    /// The column index of `name`, if present.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.schema.iter().position(|c| c.name == name)
    }

    /// The series of one column across all frames (frames predating the
    /// column yield `None`).
    pub fn series(&self, name: &str) -> Vec<Option<u64>> {
        let Some(k) = self.column(name) else {
            return vec![None; self.frames.len()];
        };
        self.frames
            .iter()
            .map(|f| f.values.get(k).copied())
            .collect()
    }
}

/// Unit inferred from the workspace naming convention (`*_ns` holds
/// nanoseconds, `*_bytes`/`*bytes_moved` hold bytes, all else counts).
fn unit_of(name: &str) -> &'static str {
    if name.ends_with("_ns") {
        "ns"
    } else if name.ends_with("_bytes") || name.ends_with("bytes_moved") {
        "bytes"
    } else {
        "count"
    }
}

struct Schema {
    columns: Vec<ColumnDesc>,
    /// Instrument names already expanded into columns (spans and
    /// histograms contribute several columns each).
    seen: Vec<&'static str>,
}

/// The fixed-capacity, lock-free time-series ring.
///
/// Usually accessed through the process-global [`recorder`]; standalone
/// instances (e.g. [`TimeSeries::new`] in tests) sample the same global
/// instrument registry but keep their own ring and schema.
pub struct TimeSeries {
    capacity: usize,
    cells: Box<[AtomicU64]>,
    frames_written: AtomicU64,
    columns_dropped: AtomicU64,
    writer: AtomicBool,
    schema: Mutex<Schema>,
    epoch: Instant,
}

impl TimeSeries {
    /// A ring holding the most recent `capacity` frames (min 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        let stride = ROW_HEADER + MAX_COLUMNS;
        let cells: Vec<AtomicU64> = (0..capacity * stride).map(|_| AtomicU64::new(0)).collect();
        TimeSeries {
            capacity,
            cells: cells.into_boxed_slice(),
            frames_written: AtomicU64::new(0),
            columns_dropped: AtomicU64::new(0),
            writer: AtomicBool::new(false),
            schema: Mutex::new(Schema {
                columns: Vec::new(),
                seen: Vec::new(),
            }),
            epoch: Instant::now(),
        }
    }

    /// Ring capacity, in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total frames recorded since creation.
    pub fn recorded(&self) -> u64 {
        self.frames_written.load(Ordering::Acquire)
    }

    /// Grow the schema to cover every instrument in `report`, returning
    /// the flat `(column, value)` pairs of this frame. Called under the
    /// writer flag, so at most one thread mutates the schema at a time.
    fn project(&self, report: &Report) -> Vec<u64> {
        let mut schema = self.schema.lock().unwrap();
        let push = |schema: &mut Schema, name: String, kind: &'static str, unit| {
            if schema.columns.len() < MAX_COLUMNS {
                schema.columns.push(ColumnDesc { name, kind, unit });
            } else {
                self.columns_dropped.fetch_add(1, Ordering::Relaxed);
            }
        };
        for c in &report.counters {
            if !schema.seen.contains(&c.name) {
                schema.seen.push(c.name);
                push(&mut schema, c.name.to_string(), "counter", unit_of(c.name));
            }
        }
        for s in &report.spans {
            if !schema.seen.contains(&s.name) {
                schema.seen.push(s.name);
                push(&mut schema, format!("{}.count", s.name), "span", "count");
                push(&mut schema, format!("{}.total_ns", s.name), "span", "ns");
            }
        }
        for h in &report.hists {
            if !schema.seen.contains(&h.name) {
                schema.seen.push(h.name);
                let unit = unit_of(h.name);
                push(
                    &mut schema,
                    format!("{}.count", h.name),
                    "histogram",
                    "count",
                );
                push(&mut schema, format!("{}.sum", h.name), "histogram", unit);
                push(&mut schema, format!("{}.p50", h.name), "histogram", unit);
                push(&mut schema, format!("{}.p99", h.name), "histogram", unit);
                push(&mut schema, format!("{}.max", h.name), "histogram", unit);
            }
        }
        // Values in column order. Column names map back to instruments
        // deterministically because schema growth mirrors report order.
        let mut values = vec![0u64; schema.columns.len()];
        let lookup = |name: &str| schema.columns.iter().position(|c| c.name == name);
        for c in &report.counters {
            if let Some(k) = lookup(c.name) {
                values[k] = c.value;
            }
        }
        for s in &report.spans {
            if let Some(k) = lookup(&format!("{}.count", s.name)) {
                values[k] = s.count;
            }
            if let Some(k) = lookup(&format!("{}.total_ns", s.name)) {
                values[k] = s.total_ns;
            }
        }
        for h in &report.hists {
            for (field, v) in [
                ("count", h.count),
                ("sum", h.sum),
                ("p50", h.percentile(50.0)),
                ("p99", h.percentile(99.0)),
                ("max", h.max),
            ] {
                if let Some(k) = lookup(&format!("{}.{field}", h.name)) {
                    values[k] = v;
                }
            }
        }
        values
    }

    /// Record one frame: a snapshot of every registered instrument,
    /// stamped with nanoseconds since the recorder was created. Returns
    /// `false` (and records nothing) if another tick is in flight — the
    /// ring never blocks its callers.
    pub fn tick(&self) -> bool {
        self.tick_report(&crate::snapshot())
    }

    /// [`tick`](Self::tick) against a caller-supplied report (lets tests
    /// control exactly what lands in the frame).
    pub fn tick_report(&self, report: &Report) -> bool {
        if self.writer.swap(true, Ordering::Acquire) {
            return false;
        }
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        let values = self.project(report);
        let f = self.frames_written.load(Ordering::Relaxed);
        let stride = ROW_HEADER + MAX_COLUMNS;
        let row = &self.cells[(f as usize % self.capacity) * stride..][..stride];
        // Seqlock: odd while writing, `2·(f+1)` once frame f is stable.
        row[0].store(2 * f + 1, Ordering::Release);
        row[1].store(t_ns, Ordering::Relaxed);
        row[2].store(values.len() as u64, Ordering::Relaxed);
        for (cell, &v) in row[ROW_HEADER..].iter().zip(&values) {
            cell.store(v, Ordering::Relaxed);
        }
        row[0].store(2 * (f + 1), Ordering::Release);
        self.frames_written.store(f + 1, Ordering::Release);
        self.writer.store(false, Ordering::Release);
        true
    }

    /// Copy the ring out: schema plus every stable frame, oldest first.
    /// Frames overwritten or mid-write during the copy are skipped, not
    /// torn.
    pub fn report(&self) -> TimeSeriesReport {
        let schema = self.schema.lock().unwrap().columns.clone();
        let stride = ROW_HEADER + MAX_COLUMNS;
        let mut frames = Vec::with_capacity(self.capacity);
        for slot in 0..self.capacity {
            let row = &self.cells[slot * stride..][..stride];
            let s1 = row[0].load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or write in flight
            }
            let ncols = (row[2].load(Ordering::Relaxed) as usize).min(MAX_COLUMNS);
            let t_ns = row[1].load(Ordering::Relaxed);
            let values: Vec<u64> = row[ROW_HEADER..ROW_HEADER + ncols]
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            // Re-check the seqlock word: if the writer lapped us the
            // copy may be torn — drop it.
            if row[0].load(Ordering::Acquire) != s1 {
                continue;
            }
            frames.push(Frame {
                index: s1 / 2 - 1,
                t_ns,
                values,
            });
        }
        frames.sort_by_key(|f| f.index);
        let recorded = self.recorded();
        TimeSeriesReport {
            schema,
            frames,
            capacity: self.capacity,
            recorded,
            dropped: recorded.saturating_sub(self.capacity as u64),
            columns_dropped: self.columns_dropped.load(Ordering::Relaxed),
        }
    }
}

/// The process-global flight recorder. Capacity comes from
/// `SG_FLIGHT_CAPACITY` (frames) at first use, default
/// [`DEFAULT_FRAMES`]. Out-of-range values (the ring needs at least 2
/// frames) and unparseable values fall back *with a one-line stderr
/// warning* — an earlier revision clamped silently, so a typo'd knob
/// quietly recorded a different window than the operator asked for.
pub fn recorder() -> &'static TimeSeries {
    static RECORDER: OnceLock<TimeSeries> = OnceLock::new();
    RECORDER.get_or_init(|| {
        let capacity = match std::env::var("SG_FLIGHT_CAPACITY") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 2 => n,
                Ok(n) => {
                    eprintln!(
                        "warning: SG_FLIGHT_CAPACITY={n} is invalid: the flight ring \
                         needs at least 2 frames; clamping to 2"
                    );
                    2
                }
                Err(_) => {
                    eprintln!(
                        "warning: SG_FLIGHT_CAPACITY={v:?} is invalid: not a frame \
                         count; using the default of {DEFAULT_FRAMES}"
                    );
                    DEFAULT_FRAMES
                }
            },
            Err(_) => DEFAULT_FRAMES,
        };
        TimeSeries::new(capacity)
    })
}

/// Join handle for a background [`Sampler`] thread; dropping it stops
/// the sampler promptly (condvar wakeup, not a sleep expiry).
pub struct Sampler {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Start a background thread ticking the global [`recorder`] every
    /// `period` (min 100 µs) until the returned guard is dropped. The
    /// first frame is taken immediately.
    pub fn start(period: Duration) -> Sampler {
        let period = period.max(Duration::from_micros(100));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sg-flight".into())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                loop {
                    recorder().tick();
                    let stopped = lock.lock().unwrap();
                    let (stopped, _) = cv.wait_timeout_while(stopped, period, |s| !*s).unwrap();
                    if *stopped {
                        return;
                    }
                }
            })
            .expect("spawn flight sampler");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Merge per-worker histogram stats into one, as if every sample had
/// been recorded into a single histogram: counts, sums (wrapping, like
/// the live instrument), per-bucket tallies add; `max` takes the
/// maximum. The property test in `tests/merge_props.rs` pins the
/// equivalence.
pub fn merge_histograms(name: &'static str, parts: &[HistogramStat]) -> HistogramStat {
    let mut acc = HistogramStat::empty(name);
    for p in parts {
        acc.merge(p);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global instrument registry is shared across the whole test
    // binary, so these tests drive standalone rings with hand-built
    // reports; ticking against live instruments is covered by the
    // `tests/timeseries.rs` integration binary.

    fn report(counter: &'static str, value: u64) -> Report {
        Report {
            counters: vec![crate::CounterStat {
                name: counter,
                value,
            }],
            spans: vec![],
            hists: vec![],
        }
    }

    #[test]
    fn frames_accumulate_and_wrap() {
        let ts = TimeSeries::new(4);
        for v in 0..6u64 {
            assert!(ts.tick_report(&report("test.ts.wrap", v)));
        }
        let rep = ts.report();
        assert_eq!(rep.capacity, 4);
        assert_eq!(rep.recorded, 6);
        assert_eq!(rep.dropped, 2);
        let indices: Vec<u64> = rep.frames.iter().map(|f| f.index).collect();
        assert_eq!(indices, vec![2, 3, 4, 5]);
        let series = rep.series("test.ts.wrap");
        assert_eq!(series, vec![Some(2), Some(3), Some(4), Some(5)]);
    }

    #[test]
    fn schema_is_append_only_and_self_describing() {
        let ts = TimeSeries::new(8);
        ts.tick_report(&report("test.ts.first_bytes", 1));
        let mut r2 = report("test.ts.first_bytes", 2);
        r2.spans.push(crate::SpanStat {
            name: "test.ts.span",
            count: 3,
            total_ns: 900,
        });
        ts.tick_report(&r2);
        let rep = ts.report();
        let names: Vec<&str> = rep.schema.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "test.ts.first_bytes",
                "test.ts.span.count",
                "test.ts.span.total_ns"
            ]
        );
        assert_eq!(rep.schema[0].kind, "counter");
        assert_eq!(rep.schema[0].unit, "bytes");
        assert_eq!(rep.schema[1].kind, "span");
        assert_eq!(rep.schema[2].unit, "ns");
        // Frame 0 predates the span columns: shorter values vector,
        // rendered as null in JSON.
        assert_eq!(rep.frames[0].values.len(), 1);
        assert_eq!(rep.frames[1].values, vec![2, 3, 900]);
        let doc = rep.to_json();
        assert!(doc["frames"][0]["values"][1].is_null());
        assert_eq!(doc["frames"][1]["values"][2], 900u64);
        let reparsed = sg_json::parse(&doc.to_string()).unwrap();
        assert_eq!(reparsed["schema"][0]["unit"], "bytes");
    }

    #[test]
    fn histogram_projection_carries_percentiles() {
        let mut h = HistogramStat::empty("test.ts.lat_ns");
        for v in [1u64, 2, 1000, 1000] {
            h.record_sample(v);
        }
        let rep = Report {
            counters: vec![],
            spans: vec![],
            hists: vec![h],
        };
        let ts = TimeSeries::new(2);
        ts.tick_report(&rep);
        let out = ts.report();
        assert_eq!(out.series("test.ts.lat_ns.count"), vec![Some(4)]);
        assert_eq!(out.series("test.ts.lat_ns.max"), vec![Some(1000)]);
        assert_eq!(out.series("test.ts.lat_ns.p99"), vec![Some(1000)]);
        assert!(out.column("test.ts.lat_ns.sum").is_some());
    }

    #[test]
    fn unit_inference_follows_naming_convention() {
        assert_eq!(unit_of("par.barrier_wait_ns"), "ns");
        assert_eq!(unit_of("io.snapshot.write_bytes"), "bytes");
        assert_eq!(unit_of("core.hierarchize.bytes_moved"), "bytes");
        assert_eq!(unit_of("core.evaluate.points"), "count");
    }

    #[test]
    fn concurrent_readers_never_see_torn_frames() {
        let ts = Arc::new(TimeSeries::new(8));
        let writer = {
            let ts = Arc::clone(&ts);
            std::thread::spawn(move || {
                for v in 0..2000u64 {
                    // The counter value doubles as a tear detector: both
                    // cells of a frame must agree.
                    let rep = Report {
                        counters: vec![
                            crate::CounterStat {
                                name: "test.ts.torn_a",
                                value: v,
                            },
                            crate::CounterStat {
                                name: "test.ts.torn_b",
                                value: v,
                            },
                        ],
                        spans: vec![],
                        hists: vec![],
                    };
                    ts.tick_report(&rep);
                }
            })
        };
        let mut seen = 0u64;
        while seen < 500 {
            let rep = ts.report();
            for f in &rep.frames {
                if f.values.len() == 2 {
                    assert_eq!(f.values[0], f.values[1], "torn frame {}", f.index);
                }
                seen += 1;
            }
        }
        writer.join().unwrap();
    }
}
