#![warn(missing_docs)]

//! # sg-telemetry — counters, span timers, and traffic accounting
//!
//! The paper's claims are quantitative: memory overhead of the `gp2idx`
//! store versus maps and tries (Table 1), hierarchization and evaluation
//! runtime (Figs. 8–10), and multicore scalability (Fig. 11). This crate
//! is the measurement substrate those claims are checked against. It
//! provides three primitives, all safe to call from any thread:
//!
//! - [`Counter`] — a monotonically increasing `u64` (call counts,
//!   bytes moved, bytes allocated);
//! - [`Span`] — an accumulating timer recording how many times a region
//!   ran and the total nanoseconds spent inside it, via either
//!   [`Span::time`] (closure) or [`Span::start`] (RAII guard);
//! - [`snapshot`] — a consistent-enough read of every registered
//!   instrument into a [`Report`], convertible to JSON for
//!   `sgtool --metrics-json` and the `BENCH_*.json` trajectory.
//!
//! ## Zero cost when disabled
//!
//! Instruments are declared as `static` items and register themselves in
//! a global registry on first use, so there is no init call and no
//! registration order to get wrong. Crates on the hot path (`sg-core`,
//! `sg-baselines`, `sg-machine`, `sg-par`) do **not** depend on this
//! crate unconditionally: they gate both the statics and every recording
//! call behind their own `telemetry` cargo feature (via a local `tel!`
//! macro), so a default build contains no atomics, no branches, and no
//! `Instant::now()` calls — the hooks are compiled away, not skipped at
//! runtime.
//!
//! ## Naming convention
//!
//! Instrument names are dotted paths, `<crate>.<subsystem>.<what>`, e.g.
//! `core.bijection.gp2idx_calls` or `par.barrier_wait_ns`. Counters whose
//! value is a byte count end in `_bytes`; counters holding accumulated
//! nanoseconds end in `_ns`. The JSON report groups by these names
//! verbatim — see `DESIGN.md` for the schema.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use sg_json::{json, Value};

/// Global registry of every instrument that has recorded at least once.
struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    spans: Mutex<Vec<&'static Span>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        spans: Mutex::new(Vec::new()),
    })
}

/// A monotonically increasing event or traffic counter.
///
/// Declare as a `static` and bump with [`Counter::add`]:
///
/// ```
/// static GP2IDX_CALLS: sg_telemetry::Counter =
///     sg_telemetry::Counter::new("core.bijection.gp2idx_calls");
/// GP2IDX_CALLS.add(1);
/// assert!(GP2IDX_CALLS.get() >= 1);
/// ```
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Create an unregistered counter; it joins the global registry on
    /// the first [`add`](Counter::add).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` to the counter. Relaxed ordering: totals are exact, the
    /// instant at which a concurrent [`snapshot`] observes them is not.
    #[inline]
    pub fn add(&'static self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().counters.lock().unwrap().push(self);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The dotted instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// An accumulating timer for a named code region.
///
/// ```
/// static SWEEP: sg_telemetry::Span = sg_telemetry::Span::new("core.hierarchize.sweep");
/// let out = SWEEP.time(|| 2 + 2);
/// assert_eq!(out, 4);
/// ```
pub struct Span {
    name: &'static str,
    count: AtomicU64,
    nanos: AtomicU64,
    registered: AtomicBool,
}

impl Span {
    /// Create an unregistered span; it joins the global registry on the
    /// first recorded interval.
    pub const fn new(name: &'static str) -> Self {
        Span {
            name,
            count: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Time one execution of `f`, accumulating into this span.
    #[inline]
    pub fn time<R>(&'static self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.record(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Begin an interval; the returned guard records it when dropped.
    /// Use when the region does not fit a closure (e.g. spans an early
    /// return or a loop iteration boundary).
    #[inline]
    pub fn start(&'static self) -> SpanGuard {
        SpanGuard {
            span: self,
            t0: Instant::now(),
        }
    }

    /// Record an externally measured interval of `ns` nanoseconds.
    #[inline]
    pub fn record(&'static self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.nanos.fetch_add(ns, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().spans.lock().unwrap().push(self);
        }
    }

    /// Number of recorded intervals.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total accumulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// The dotted instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// RAII guard from [`Span::start`]; records the interval on drop.
pub struct SpanGuard {
    span: &'static Span,
    t0: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.span.record(self.t0.elapsed().as_nanos() as u64);
    }
}

/// One counter's state in a [`Report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Dotted instrument name.
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// One span's state in a [`Report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Dotted instrument name.
    pub name: &'static str,
    /// Number of recorded intervals.
    pub count: u64,
    /// Total accumulated nanoseconds across all intervals.
    pub total_ns: u64,
}

/// A point-in-time copy of every registered instrument, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All registered counters.
    pub counters: Vec<CounterStat>,
    /// All registered spans.
    pub spans: Vec<SpanStat>,
}

impl Report {
    /// Serialize to the metrics JSON schema used by
    /// `sgtool --metrics-json` and the bench binaries:
    ///
    /// ```json
    /// {
    ///   "counters": { "<name>": <u64>, ... },
    ///   "spans": { "<name>": { "count": <u64>, "total_ns": <u64>,
    ///                          "mean_ns": <f64> }, ... }
    /// }
    /// ```
    pub fn to_json(&self) -> Value {
        let mut counters = json!({});
        for c in &self.counters {
            counters[c.name] = Value::from(c.value as f64);
        }
        let mut spans = json!({});
        for s in &self.spans {
            let mean = if s.count > 0 {
                s.total_ns as f64 / s.count as f64
            } else {
                0.0
            };
            spans[s.name] = json!({
                "count": s.count as f64,
                "total_ns": s.total_ns as f64,
                "mean_ns": mean
            });
        }
        json!({ "counters": counters, "spans": spans })
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a span by name.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Copy every registered instrument into a [`Report`], sorted by name.
/// Values recorded concurrently with the snapshot may or may not be
/// included; totals never go backwards.
pub fn snapshot() -> Report {
    let reg = registry();
    let mut counters: Vec<CounterStat> = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|c| CounterStat {
            name: c.name,
            value: c.get(),
        })
        .collect();
    counters.sort_by_key(|c| c.name);
    let mut spans: Vec<SpanStat> = reg
        .spans
        .lock()
        .unwrap()
        .iter()
        .map(|s| SpanStat {
            name: s.name,
            count: s.count(),
            total_ns: s.total_ns(),
        })
        .collect();
    spans.sort_by_key(|s| s.name);
    Report { counters, spans }
}

/// Zero every registered instrument (they stay registered). Intended for
/// bench binaries that measure several configurations in one process.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().unwrap().iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for s in reg.spans.lock().unwrap().iter() {
        s.count.store(0, Ordering::Relaxed);
        s.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share one process-global registry, so each test uses its
    // own instruments and asserts only about those.

    #[test]
    fn counter_accumulates_and_registers() {
        static C: Counter = Counter::new("test.counter_accumulates");
        C.add(3);
        C.add(4);
        assert_eq!(C.get(), 7);
        let rep = snapshot();
        assert_eq!(rep.counter("test.counter_accumulates"), Some(7));
    }

    #[test]
    fn span_records_closure_and_guard() {
        static S: Span = Span::new("test.span_records");
        let out = S.time(|| 21 * 2);
        assert_eq!(out, 42);
        {
            let _g = S.start();
            std::hint::black_box(0u64);
        }
        assert_eq!(S.count(), 2);
        let rep = snapshot();
        let stat = rep.span("test.span_records").expect("span registered");
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_ns, S.total_ns());
    }

    #[test]
    fn counter_is_thread_safe() {
        static C: Counter = Counter::new("test.counter_threads");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        C.add(1);
                    }
                });
            }
        });
        assert_eq!(C.get(), 8000);
    }

    #[test]
    fn report_json_shape() {
        static C: Counter = Counter::new("test.json_counter");
        static S: Span = Span::new("test.json_span");
        C.add(5);
        S.record(100);
        S.record(300);
        let v = snapshot().to_json();
        assert_eq!(v["counters"]["test.json_counter"], 5u64);
        assert_eq!(v["spans"]["test.json_span"]["count"], 2u64);
        assert_eq!(v["spans"]["test.json_span"]["total_ns"], 400u64);
        assert_eq!(v["spans"]["test.json_span"]["mean_ns"], 200.0);
        // The report must survive a JSON round-trip (it is written to
        // disk by sgtool --metrics-json).
        let reparsed = sg_json::parse(&v.to_string()).unwrap();
        assert_eq!(reparsed["counters"]["test.json_counter"], 5u64);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        static A: Counter = Counter::new("test.sorted_b");
        static B: Counter = Counter::new("test.sorted_a");
        A.add(1);
        B.add(1);
        let rep = snapshot();
        let names: Vec<&str> = rep.counters.iter().map(|c| c.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
