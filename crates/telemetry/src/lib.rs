#![warn(missing_docs)]

//! # sg-telemetry — counters, span timers, histograms, and tracing
//!
//! The paper's claims are quantitative *and distributional*: memory
//! overhead of the `gp2idx` store versus maps and tries (Table 1),
//! hierarchization and evaluation runtime (Figs. 8–10), and multicore
//! scalability flattening exactly where barrier wait and load imbalance
//! grow (Fig. 11). This crate is the measurement substrate those claims
//! are checked against. It provides, all safe to call from any thread:
//!
//! - [`Counter`] — a monotonically increasing `u64` (call counts,
//!   bytes moved, bytes allocated);
//! - [`Span`] — an accumulating timer recording how many times a region
//!   ran and the total nanoseconds spent inside it, via either
//!   [`Span::time`] (closure) or [`Span::start`] (RAII guard);
//! - [`Histogram`] — a log2-bucketed latency/size distribution with
//!   p50/p90/p99/max extraction, for the claims where the *tail* matters
//!   (per-level-group sweep times, batch latencies, `gp2idx` samples);
//! - [`trace`] — per-thread fixed-capacity trace-event ring buffers
//!   (lock-free on the record path) exported as Chrome Trace Event
//!   Format JSON, loadable in `chrome://tracing` / Perfetto;
//! - [`regions`] — per-parallel-region load-imbalance accounting
//!   (per-worker busy vs. barrier-wait breakdown, imbalance ratio);
//! - [`snapshot`] / [`snapshot_delta`] — a consistent-enough read of
//!   every registered instrument into a [`Report`] (optionally as a
//!   delta against a captured baseline, for per-repetition attribution
//!   in the bench harness), convertible to JSON for
//!   `sgtool --metrics-json` and the `BENCH_*.json` trajectory;
//! - [`provenance`] — a run-provenance JSON record (git SHA, UTC
//!   timestamp, thread count, features, host machine model) embedded in
//!   every figure output and metrics report.
//!
//! ## Zero cost when disabled
//!
//! Instruments are declared as `static` items and register themselves in
//! a global registry on first use, so there is no init call and no
//! registration order to get wrong. Crates on the hot path (`sg-core`,
//! `sg-baselines`, `sg-machine`, `sg-par`) do **not** depend on this
//! crate unconditionally: they gate both the statics and every recording
//! call behind their own `telemetry` cargo feature (via a local `tel!`
//! macro), so a default build contains no atomics, no branches, and no
//! `Instant::now()` calls — the hooks are compiled away, not skipped at
//! runtime.
//!
//! ## Naming convention
//!
//! Instrument names are dotted paths, `<crate>.<subsystem>.<what>`, e.g.
//! `core.bijection.gp2idx_calls` or `par.barrier_wait_ns`. Counters whose
//! value is a byte count end in `_bytes`; counters holding accumulated
//! nanoseconds end in `_ns`. The JSON report groups by these names
//! verbatim — see `DESIGN.md` for the schema.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use sg_json::{json, Value};

pub mod provenance;
pub mod regions;
pub mod timeseries;
pub mod trace;

pub use provenance::{provenance, set_kernel_hint, set_threads_hint};

/// Global registry of every instrument that has recorded at least once.
struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    spans: Mutex<Vec<&'static Span>>,
    hists: Mutex<Vec<&'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        spans: Mutex::new(Vec::new()),
        hists: Mutex::new(Vec::new()),
    })
}

/// A monotonically increasing event or traffic counter.
///
/// Declare as a `static` and bump with [`Counter::add`]:
///
/// ```
/// static GP2IDX_CALLS: sg_telemetry::Counter =
///     sg_telemetry::Counter::new("core.bijection.gp2idx_calls");
/// GP2IDX_CALLS.add(1);
/// assert!(GP2IDX_CALLS.get() >= 1);
/// ```
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Create an unregistered counter; it joins the global registry on
    /// the first [`add`](Counter::add).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` to the counter. Relaxed ordering: totals are exact, the
    /// instant at which a concurrent [`snapshot`] observes them is not.
    #[inline]
    pub fn add(&'static self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().counters.lock().unwrap().push(self);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The dotted instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// An accumulating timer for a named code region.
///
/// ```
/// static SWEEP: sg_telemetry::Span = sg_telemetry::Span::new("core.hierarchize.sweep");
/// let out = SWEEP.time(|| 2 + 2);
/// assert_eq!(out, 4);
/// ```
pub struct Span {
    name: &'static str,
    count: AtomicU64,
    nanos: AtomicU64,
    registered: AtomicBool,
}

impl Span {
    /// Create an unregistered span; it joins the global registry on the
    /// first recorded interval.
    pub const fn new(name: &'static str) -> Self {
        Span {
            name,
            count: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Time one execution of `f`, accumulating into this span.
    #[inline]
    pub fn time<R>(&'static self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.record(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Begin an interval; the returned guard records it when dropped.
    /// Use when the region does not fit a closure (e.g. spans an early
    /// return or a loop iteration boundary).
    #[inline]
    pub fn start(&'static self) -> SpanGuard {
        SpanGuard {
            span: self,
            t0: Instant::now(),
        }
    }

    /// Record an externally measured interval of `ns` nanoseconds.
    #[inline]
    pub fn record(&'static self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.nanos.fetch_add(ns, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().spans.lock().unwrap().push(self);
        }
    }

    /// Number of recorded intervals.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total accumulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// The dotted instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// RAII guard from [`Span::start`]; records the interval on drop.
pub struct SpanGuard {
    span: &'static Span,
    t0: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.span.record(self.t0.elapsed().as_nanos() as u64);
    }
}

/// Number of log2 buckets in a [`Histogram`]: bucket 0 holds the value
/// `0`, bucket `b ≥ 1` holds values in `[2^(b−1), 2^b − 1]`, and the last
/// bucket (64) holds everything from `2^63` up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index a value falls into (see [`HIST_BUCKETS`]).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `b`.
#[inline]
pub fn bucket_lower(b: usize) -> u64 {
    match b {
        0 => 0,
        _ => 1u64 << (b - 1),
    }
}

/// Inclusive upper bound of bucket `b`.
#[inline]
pub fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        b if b >= 64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A log2-bucketed distribution of `u64` samples (latencies in
/// nanoseconds, burst sizes in bytes/lines). Like the other instruments
/// it is a `const`-constructible static that registers itself on first
/// use, and recording is wait-free: one bucket increment plus
/// count/sum/max updates, all relaxed atomics.
///
/// ```
/// static H: sg_telemetry::Histogram = sg_telemetry::Histogram::new("test.doc_hist");
/// H.record(100);
/// assert_eq!(H.count(), 1);
/// ```
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// Create an unregistered histogram; it joins the global registry on
    /// the first [`record`](Histogram::record).
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Record one sample. The running sum wraps on overflow (which
    /// takes over 2⁶⁴ accumulated nanoseconds — centuries); bucket
    /// counts and the maximum are exact.
    #[inline]
    pub fn record(&'static self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().hists.lock().unwrap().push(self);
        }
    }

    /// Time one execution of `f`, recording elapsed nanoseconds.
    #[inline]
    pub fn time<R>(&'static self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.record(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The dotted instrument name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn stat(&self) -> HistogramStat {
        HistogramStat {
            name: self.name,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// One counter's state in a [`Report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Dotted instrument name.
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// One span's state in a [`Report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Dotted instrument name.
    pub name: &'static str,
    /// Number of recorded intervals.
    pub count: u64,
    /// Total accumulated nanoseconds across all intervals.
    pub total_ns: u64,
}

/// One histogram's state in a [`Report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStat {
    /// Dotted instrument name.
    pub name: &'static str,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Per-bucket sample counts ([`HIST_BUCKETS`] entries; see
    /// [`bucket_lower`]/[`bucket_upper`] for the value ranges).
    pub buckets: Vec<u64>,
}

impl HistogramStat {
    /// An empty stat with zeroed buckets — the starting point for
    /// offline accumulation ([`record_sample`](Self::record_sample) /
    /// [`merge`](Self::merge)), e.g. per-worker histograms folded into
    /// one after a parallel region.
    pub fn empty(name: &'static str) -> Self {
        HistogramStat {
            name,
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// Record one sample into this plain-data stat, with exactly the
    /// semantics of the live [`Histogram::record`] (wrapping sum, exact
    /// buckets/max).
    pub fn record_sample(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.max = self.max.max(value);
    }

    /// Fold `other` into `self`: counts, sums (wrapping), and per-bucket
    /// tallies add; `max` takes the larger. Merging N per-worker stats
    /// is exactly equivalent to recording all their samples into one
    /// histogram (pinned by the `merge_props` property test).
    pub fn merge(&mut self, other: &HistogramStat) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
    }

    /// Approximate `q`-th percentile (`q` in `0..=100`): the upper bound
    /// of the bucket holding the `⌈q·count/100⌉`-th smallest sample,
    /// capped at the recorded maximum (so a single-sample histogram
    /// reports that sample exactly, and p100 is always `max`). Returns 0
    /// for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every registered instrument, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All registered counters.
    pub counters: Vec<CounterStat>,
    /// All registered spans.
    pub spans: Vec<SpanStat>,
    /// All registered histograms.
    pub hists: Vec<HistogramStat>,
}

impl Report {
    /// Serialize to the metrics JSON schema used by
    /// `sgtool --metrics-json` and the bench binaries:
    ///
    /// ```json
    /// {
    ///   "counters": { "<name>": <u64>, ... },
    ///   "spans": { "<name>": { "count": <u64>, "total_ns": <u64>,
    ///                          "mean_ns": <f64> }, ... },
    ///   "histograms": { "<name>": { "count": <u64>, "sum": <u64>,
    ///                               "max": <u64>, "mean": <f64>,
    ///                               "p50": <u64>, "p90": <u64>,
    ///                               "p99": <u64>,
    ///                               "buckets": { "<lower_bound>": <u64> } } }
    /// }
    /// ```
    ///
    /// Histogram buckets are keyed by their inclusive lower bound;
    /// empty buckets are omitted. Every map is emitted with its keys in
    /// sorted order — [`snapshot`] already sorts, but hand-assembled and
    /// merged reports must serialize deterministically too, so schema
    /// gates and report diffs are stable across runs.
    pub fn to_json(&self) -> Value {
        let mut sorted_counters: Vec<&CounterStat> = self.counters.iter().collect();
        sorted_counters.sort_by_key(|c| c.name);
        let mut sorted_spans: Vec<&SpanStat> = self.spans.iter().collect();
        sorted_spans.sort_by_key(|s| s.name);
        let mut sorted_hists: Vec<&HistogramStat> = self.hists.iter().collect();
        sorted_hists.sort_by_key(|h| h.name);
        let mut counters = json!({});
        for c in sorted_counters {
            counters[c.name] = Value::from(c.value as f64);
        }
        let mut spans = json!({});
        for s in sorted_spans {
            let mean = if s.count > 0 {
                s.total_ns as f64 / s.count as f64
            } else {
                0.0
            };
            spans[s.name] = json!({
                "count": s.count as f64,
                "total_ns": s.total_ns as f64,
                "mean_ns": mean
            });
        }
        let mut hists = json!({});
        for h in sorted_hists {
            let mut buckets = json!({});
            for (b, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    buckets.set(&bucket_lower(b).to_string(), Value::from(n as f64));
                }
            }
            hists[h.name] = json!({
                "count": h.count as f64,
                "sum": h.sum as f64,
                "max": h.max as f64,
                "mean": h.mean(),
                "p50": h.percentile(50.0) as f64,
                "p90": h.percentile(90.0) as f64,
                "p99": h.percentile(99.0) as f64,
                "buckets": buckets
            });
        }
        json!({ "counters": counters, "spans": spans, "histograms": hists })
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// All counters under a dotted-name prefix (e.g. `"io.snapshot."`),
    /// for subsystem-level assertions and dashboards. Always sorted by
    /// name, even when the report itself was assembled out of order.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| (c.name, c.value))
            .collect();
        out.sort_by_key(|&(name, _)| name);
        out
    }

    /// The process-global flight recorder's current contents — schema
    /// plus ring frames; see [`timeseries`]. The recorder only holds
    /// frames if something [`timeseries::TimeSeries::tick`]ed it (e.g. a
    /// running [`timeseries::Sampler`]).
    pub fn timeseries() -> timeseries::TimeSeriesReport {
        timeseries::recorder().report()
    }

    /// Look up a span by name.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Look up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistogramStat> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Subtract `baseline` from `self` per instrument name, producing the
    /// activity that happened *between* the two snapshots. Instruments
    /// absent from the baseline pass through unchanged; instruments whose
    /// delta is entirely zero are dropped, so a report scoped to one bench
    /// repetition only lists what that repetition touched. Subtraction
    /// saturates at zero (a [`reset`] between the snapshots cannot
    /// produce wrap-around garbage). Caveat: a histogram's `max` is a
    /// process-lifetime high-water mark, so the delta keeps `self.max`
    /// rather than inventing a per-interval maximum — percentiles, which
    /// are cap-sensitive only in the top bucket, remain meaningful.
    pub fn delta_since(&self, baseline: &Report) -> Report {
        let counters: Vec<CounterStat> = self
            .counters
            .iter()
            .map(|c| CounterStat {
                name: c.name,
                value: c
                    .value
                    .saturating_sub(baseline.counter(c.name).unwrap_or(0)),
            })
            .filter(|c| c.value != 0)
            .collect();
        let spans: Vec<SpanStat> = self
            .spans
            .iter()
            .map(|s| {
                let base = baseline.span(s.name);
                SpanStat {
                    name: s.name,
                    count: s.count.saturating_sub(base.map_or(0, |b| b.count)),
                    total_ns: s.total_ns.saturating_sub(base.map_or(0, |b| b.total_ns)),
                }
            })
            .filter(|s| s.count != 0 || s.total_ns != 0)
            .collect();
        let hists: Vec<HistogramStat> = self
            .hists
            .iter()
            .map(|h| {
                let base = baseline.hist(h.name);
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(b, &n)| {
                        n.saturating_sub(base.map_or(0, |x| x.buckets.get(b).copied().unwrap_or(0)))
                    })
                    .collect();
                HistogramStat {
                    name: h.name,
                    count: h.count.saturating_sub(base.map_or(0, |x| x.count)),
                    sum: h.sum.saturating_sub(base.map_or(0, |x| x.sum)),
                    max: h.max,
                    buckets,
                }
            })
            .filter(|h| h.count != 0)
            .collect();
        Report {
            counters,
            spans,
            hists,
        }
    }
}

/// Copy every registered instrument into a [`Report`], sorted by name.
/// Values recorded concurrently with the snapshot may or may not be
/// included; totals never go backwards.
pub fn snapshot() -> Report {
    let reg = registry();
    let mut counters: Vec<CounterStat> = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|c| CounterStat {
            name: c.name,
            value: c.get(),
        })
        .collect();
    counters.sort_by_key(|c| c.name);
    let mut spans: Vec<SpanStat> = reg
        .spans
        .lock()
        .unwrap()
        .iter()
        .map(|s| SpanStat {
            name: s.name,
            count: s.count(),
            total_ns: s.total_ns(),
        })
        .collect();
    spans.sort_by_key(|s| s.name);
    let mut hists: Vec<HistogramStat> =
        reg.hists.lock().unwrap().iter().map(|h| h.stat()).collect();
    hists.sort_by_key(|h| h.name);
    Report {
        counters,
        spans,
        hists,
    }
}

/// [`snapshot`] expressed as a delta against a previously captured
/// baseline — see [`Report::delta_since`]. The bench harness brackets
/// each repetition with this to attribute counters to individual reps
/// instead of whole-process totals.
pub fn snapshot_delta(baseline: &Report) -> Report {
    snapshot().delta_since(baseline)
}

/// Zero every registered instrument (they stay registered) and clear the
/// trace ring buffers and region accounting. Intended for bench binaries
/// that measure several configurations in one process.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().unwrap().iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for s in reg.spans.lock().unwrap().iter() {
        s.count.store(0, Ordering::Relaxed);
        s.nanos.store(0, Ordering::Relaxed);
    }
    for h in reg.hists.lock().unwrap().iter() {
        for b in h.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
    }
    trace::clear();
    regions::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share one process-global registry, so each test uses its
    // own instruments and asserts only about those.

    #[test]
    fn counter_accumulates_and_registers() {
        static C: Counter = Counter::new("test.counter_accumulates");
        C.add(3);
        C.add(4);
        assert_eq!(C.get(), 7);
        let rep = snapshot();
        assert_eq!(rep.counter("test.counter_accumulates"), Some(7));
    }

    #[test]
    fn span_records_closure_and_guard() {
        static S: Span = Span::new("test.span_records");
        let out = S.time(|| 21 * 2);
        assert_eq!(out, 42);
        {
            let _g = S.start();
            std::hint::black_box(0u64);
        }
        assert_eq!(S.count(), 2);
        let rep = snapshot();
        let stat = rep.span("test.span_records").expect("span registered");
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_ns, S.total_ns());
    }

    #[test]
    fn counter_is_thread_safe() {
        static C: Counter = Counter::new("test.counter_threads");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        C.add(1);
                    }
                });
            }
        });
        assert_eq!(C.get(), 8000);
    }

    #[test]
    fn report_json_shape() {
        static C: Counter = Counter::new("test.json_counter");
        static S: Span = Span::new("test.json_span");
        C.add(5);
        S.record(100);
        S.record(300);
        let v = snapshot().to_json();
        assert_eq!(v["counters"]["test.json_counter"], 5u64);
        assert_eq!(v["spans"]["test.json_span"]["count"], 2u64);
        assert_eq!(v["spans"]["test.json_span"]["total_ns"], 400u64);
        assert_eq!(v["spans"]["test.json_span"]["mean_ns"], 200.0);
        // The report must survive a JSON round-trip (it is written to
        // disk by sgtool --metrics-json).
        let reparsed = sg_json::parse(&v.to_string()).unwrap();
        assert_eq!(reparsed["counters"]["test.json_counter"], 5u64);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 holds exactly the value 0.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(0), 0);
        // Bucket b holds [2^(b-1), 2^b - 1].
        for b in 1..=63usize {
            let lo = 1u64 << (b - 1);
            assert_eq!(bucket_index(lo), b, "lower edge of bucket {b}");
            assert_eq!(bucket_index(lo - 1), b - 1, "below bucket {b}");
            assert_eq!(bucket_lower(b), lo);
            if b < 64 {
                let hi = bucket_upper(b);
                assert_eq!(bucket_index(hi), b, "upper edge of bucket {b}");
            }
        }
        // The top bucket saturates at u64::MAX.
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
        assert_eq!(bucket_lower(64), 1u64 << 63);
    }

    #[test]
    fn histogram_records_and_reports() {
        static H: Histogram = Histogram::new("test.hist_records");
        H.record(0);
        H.record(1);
        H.record(5); // bucket 3: [4, 7]
        H.record(5);
        H.record(1000); // bucket 10: [512, 1023]
        assert_eq!(H.count(), 5);
        let rep = snapshot();
        let stat = rep.hist("test.hist_records").expect("hist registered");
        assert_eq!(stat.count, 5);
        assert_eq!(stat.sum, 1011);
        assert_eq!(stat.max, 1000);
        assert_eq!(stat.buckets[0], 1);
        assert_eq!(stat.buckets[1], 1);
        assert_eq!(stat.buckets[3], 2);
        assert_eq!(stat.buckets[10], 1);
        assert!((stat.mean() - 1011.0 / 5.0).abs() < 1e-12);
        // p50 = 3rd smallest sample → bucket 3, upper bound 7.
        assert_eq!(stat.percentile(50.0), 7);
        // p99 and p100 land in the last non-empty bucket, capped at max.
        assert_eq!(stat.percentile(99.0), 1000);
        assert_eq!(stat.percentile(100.0), 1000);
        assert_eq!(stat.percentile(0.0), 0); // first sample is the 0
    }

    #[test]
    fn histogram_percentile_edge_cases() {
        // Empty histogram: every percentile is 0.
        let empty = HistogramStat {
            name: "test.empty",
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        };
        assert_eq!(empty.percentile(50.0), 0);
        assert_eq!(empty.percentile(99.0), 0);
        assert_eq!(empty.mean(), 0.0);

        // Single sample: exact at every percentile (max cap beats the
        // bucket upper bound).
        let mut buckets = vec![0; HIST_BUCKETS];
        buckets[bucket_index(12345)] = 1;
        let single = HistogramStat {
            name: "test.single",
            count: 1,
            sum: 12345,
            max: 12345,
            buckets,
        };
        assert_eq!(single.percentile(0.0), 12345);
        assert_eq!(single.percentile(50.0), 12345);
        assert_eq!(single.percentile(100.0), 12345);

        // Saturating sample in the top bucket.
        let mut buckets = vec![0; HIST_BUCKETS];
        buckets[64] = 1;
        let sat = HistogramStat {
            name: "test.saturating",
            count: 1,
            sum: u64::MAX,
            max: u64::MAX,
            buckets,
        };
        assert_eq!(sat.percentile(99.0), u64::MAX);
        // Out-of-range q clamps rather than panicking.
        assert_eq!(sat.percentile(150.0), u64::MAX);
        assert_eq!(sat.percentile(-3.0), u64::MAX);
    }

    #[test]
    fn delta_since_attributes_one_interval() {
        static C: Counter = Counter::new("test.delta_counter");
        static S: Span = Span::new("test.delta_span");
        static H: Histogram = Histogram::new("test.delta_hist");
        C.add(10);
        S.record(500);
        H.record(8);
        let baseline = snapshot();
        C.add(7);
        S.record(300);
        H.record(32);
        H.record(32);
        let delta = snapshot_delta(&baseline);
        assert_eq!(delta.counter("test.delta_counter"), Some(7));
        let s = delta.span("test.delta_span").expect("span in delta");
        assert_eq!(s.count, 1);
        assert_eq!(s.total_ns, 300);
        let h = delta.hist("test.delta_hist").expect("hist in delta");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 64);
        assert_eq!(h.buckets[bucket_index(32)], 2);
        assert_eq!(h.buckets[bucket_index(8)], 0);
        // max stays the process high-water mark (documented caveat).
        assert_eq!(h.max, 32);
    }

    #[test]
    fn delta_since_drops_untouched_instruments() {
        static C: Counter = Counter::new("test.delta_quiet");
        C.add(1);
        let baseline = snapshot();
        let delta = snapshot_delta(&baseline);
        assert_eq!(delta.counter("test.delta_quiet"), None);
    }

    #[test]
    fn histogram_json_shape() {
        static H: Histogram = Histogram::new("test.hist_json");
        H.record(5);
        H.record(6);
        H.record(700);
        let v = snapshot().to_json();
        let h = &v["histograms"]["test.hist_json"];
        assert_eq!(h["count"], 3u64);
        assert_eq!(h["sum"], 711u64);
        assert_eq!(h["max"], 700u64);
        assert_eq!(h["p99"], 700u64);
        // Buckets keyed by inclusive lower bound; empty buckets omitted.
        assert_eq!(h["buckets"]["4"], 2u64);
        assert_eq!(h["buckets"]["512"], 1u64);
        assert!(h["buckets"]["0"].is_null());
        let reparsed = sg_json::parse(&v.to_string()).unwrap();
        assert_eq!(reparsed["histograms"]["test.hist_json"]["count"], 3u64);
    }

    #[test]
    fn hand_built_reports_serialize_in_sorted_order() {
        // A merged / hand-assembled report arrives unsorted; both the
        // prefix query and the JSON export must still be deterministic.
        let rep = Report {
            counters: vec![
                CounterStat {
                    name: "test.order.zeta",
                    value: 1,
                },
                CounterStat {
                    name: "test.order.alpha",
                    value: 2,
                },
                CounterStat {
                    name: "other.prefix",
                    value: 3,
                },
            ],
            spans: vec![
                SpanStat {
                    name: "test.order.span_b",
                    count: 1,
                    total_ns: 10,
                },
                SpanStat {
                    name: "test.order.span_a",
                    count: 1,
                    total_ns: 20,
                },
            ],
            hists: vec![
                {
                    let mut h = HistogramStat::empty("test.order.hist_b");
                    h.record_sample(4);
                    h
                },
                {
                    let mut h = HistogramStat::empty("test.order.hist_a");
                    h.record_sample(8);
                    h
                },
            ],
        };
        let pref = rep.counters_with_prefix("test.order.");
        assert_eq!(
            pref,
            vec![("test.order.alpha", 2u64), ("test.order.zeta", 1u64)]
        );
        let v = rep.to_json();
        let keys = |obj: &Value| -> Vec<String> {
            obj.as_object()
                .unwrap()
                .iter()
                .map(|(k, _)| k.clone())
                .collect()
        };
        let mut want = keys(&v["counters"]);
        want.sort();
        assert_eq!(keys(&v["counters"]), want);
        assert_eq!(
            keys(&v["spans"]),
            vec!["test.order.span_a", "test.order.span_b"]
        );
        assert_eq!(
            keys(&v["histograms"]),
            vec!["test.order.hist_a", "test.order.hist_b"]
        );
        // Serialization is byte-stable run to run.
        assert_eq!(v.to_string(), rep.to_json().to_string());
    }

    #[test]
    fn histogram_stat_merge_matches_single_recording() {
        let samples_a = [0u64, 1, 5, 1000];
        let samples_b = [7u64, 7, 1 << 40];
        let mut a = HistogramStat::empty("test.merge.basic");
        let mut b = HistogramStat::empty("test.merge.basic");
        let mut whole = HistogramStat::empty("test.merge.basic");
        for &v in &samples_a {
            a.record_sample(v);
            whole.record_sample(v);
        }
        for &v in &samples_b {
            b.record_sample(v);
            whole.record_sample(v);
        }
        let mut merged = HistogramStat::empty("test.merge.basic");
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        static A: Counter = Counter::new("test.sorted_b");
        static B: Counter = Counter::new("test.sorted_a");
        A.add(1);
        B.add(1);
        let rep = snapshot();
        let names: Vec<&str> = rep.counters.iter().map(|c| c.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
