//! Run provenance: who produced this measurement, on what, when.
//!
//! Every `results/*.json` figure record, `BENCH_*.json` trajectory
//! entry, and `sgtool --metrics-json` report embeds this block so a
//! number can always be traced back to the commit, host, and thread
//! count that produced it — without it, a regression in the trajectory
//! is indistinguishable from a hardware change.

use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use sg_json::{json, Value};

/// Build the provenance record:
///
/// ```json
/// { "git_sha": "c0cc1e9…", "dirty": false,
///   "timestamp_utc": "2026-02-11T09:31:05Z",
///   "threads": 8, "features": ["telemetry"],
///   "machine": "AMD Opteron …", "arch": "x86_64", "os": "linux",
///   "debug_build": false }
/// ```
///
/// `features` is supplied by the caller because cargo features are
/// per-crate: the binary knows which of its instrumentation features
/// were compiled in, this library does not. Fields that cannot be
/// determined (no git, no `/proc/cpuinfo`) degrade to `"unknown"` or a
/// portable fallback rather than failing — provenance must never be the
/// reason a benchmark run aborts.
pub fn provenance(features: &[&str]) -> Value {
    let mut p = json!({
        "git_sha": git_sha().unwrap_or_else(|| "unknown".to_string()),
        "dirty": git_dirty(),
        "timestamp_utc": iso8601_utc(unix_seconds()),
        "threads": threads() as f64,
        "machine": machine_model(),
        "arch": std::env::consts::ARCH,
        "os": std::env::consts::OS,
        "debug_build": cfg!(debug_assertions),
        "kernel": kernel_label(),
    });
    p["features"] = Value::Array(features.iter().map(|&f| Value::from(f)).collect());
    p
}

fn git_output(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim().to_string();
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

fn git_sha() -> Option<String> {
    git_output(&["rev-parse", "HEAD"])
}

/// `true` when the working tree differs from HEAD; `false` when clean
/// *or* when git is unavailable (the sha will say "unknown" then).
fn git_dirty() -> bool {
    git_output(&["status", "--porcelain"]).is_some()
}

fn unix_seconds() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Render unix seconds as `YYYY-MM-DDThh:mm:ssZ` using Howard Hinnant's
/// `civil_from_days` algorithm — exact for the whole u64 range we care
/// about, no date crate needed.
fn iso8601_utc(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (hh, mm, ss) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let day = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let month = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    let year = yoe as i64 + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

/// Runtime override installed by [`set_threads_hint`] (0 = none).
static THREADS_HINT: AtomicUsize = AtomicUsize::new(0);

/// Tell provenance the thread count actually in use. Called by
/// `sg_par::set_num_threads` (this crate cannot call sg-par without a
/// dependency cycle, so the hint flows in the other direction); without
/// it a runtime resize would leave provenance reporting the stale
/// environment-derived count.
pub fn set_threads_hint(n: usize) {
    THREADS_HINT.store(n, Ordering::SeqCst);
}

/// The worker-thread count `sg-par` would use: the [`set_threads_hint`]
/// override if one was installed, else `SG_PAR_THREADS` (mirroring
/// `sg_par::num_threads`), else available parallelism.
fn threads() -> usize {
    let hint = THREADS_HINT.load(Ordering::SeqCst);
    if hint >= 1 {
        return hint;
    }
    if let Ok(v) = std::env::var("SG_PAR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Last SIMD kernel dispatched by `sg-core` (see [`set_kernel_hint`]).
static KERNEL_HINT: Mutex<Option<&'static str>> = Mutex::new(None);

/// Tell provenance which compute kernel `sg_core::kernel::active()`
/// resolved to (`"scalar"`, `"avx2"`, `"neon"`). Same inverted-dependency
/// pattern as [`set_threads_hint`]: this crate cannot query sg-core, so
/// the hot paths stamp the hint on dispatch. Without it — e.g. before any
/// kernel has run — the label falls back to the `SG_KERNEL` request.
pub fn set_kernel_hint(name: &'static str) {
    *KERNEL_HINT.lock().unwrap_or_else(|e| e.into_inner()) = Some(name);
}

/// The kernel label for provenance: the dispatched kind if one was
/// stamped, else the (normalized) `SG_KERNEL` selection request, else
/// `"auto"`.
fn kernel_label() -> String {
    if let Some(name) = *KERNEL_HINT.lock().unwrap_or_else(|e| e.into_inner()) {
        return name.to_string();
    }
    match std::env::var("SG_KERNEL") {
        Ok(v) if !v.trim().is_empty() => v.trim().to_ascii_lowercase(),
        _ => "auto".to_string(),
    }
}

/// Host CPU model from `/proc/cpuinfo` (`model name` line), falling back
/// to `arch/os` on platforms without procfs.
fn machine_model() -> String {
    if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in cpuinfo.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, model)) = rest.split_once(':') {
                    let model = model.trim();
                    if !model.is_empty() {
                        return model.to_string();
                    }
                }
            }
        }
    }
    format!("{}/{}", std::env::consts::ARCH, std::env::consts::OS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso8601_known_dates() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(86_399), "1970-01-01T23:59:59Z");
        // 2000-02-29 (leap day) 12:00:00 UTC.
        assert_eq!(iso8601_utc(951_825_600), "2000-02-29T12:00:00Z");
        // 2026-01-01 00:00:00 UTC.
        assert_eq!(iso8601_utc(1_767_225_600), "2026-01-01T00:00:00Z");
    }

    #[test]
    fn provenance_has_all_fields() {
        let p = provenance(&["telemetry"]);
        for key in [
            "git_sha",
            "dirty",
            "timestamp_utc",
            "threads",
            "features",
            "machine",
            "arch",
            "os",
            "debug_build",
            "kernel",
        ] {
            assert!(p.get(key).is_some(), "missing provenance key {key}");
        }
        assert_eq!(p["features"][0], "telemetry");
        assert!(p["threads"].as_u64().unwrap() >= 1);
        let ts = p["timestamp_utc"].as_str().unwrap();
        assert_eq!(ts.len(), 20);
        assert!(ts.ends_with('Z'));
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
        // Survives serialization.
        let reparsed = sg_json::parse(&p.to_string()).unwrap();
        assert_eq!(reparsed["arch"], std::env::consts::ARCH);
    }

    #[test]
    fn kernel_label_prefers_the_dispatch_hint() {
        set_kernel_hint("scalar");
        assert_eq!(kernel_label(), "scalar");
        assert_eq!(provenance(&[])["kernel"], "scalar");
        set_kernel_hint("avx2");
        assert_eq!(kernel_label(), "avx2");
    }
}
