//! Integration tests for the flight recorder against the *live* global
//! instrument registry. These live in their own test binary because they
//! tick the process-global recorder, which other test binaries must not
//! observe.

use std::time::Duration;

use sg_telemetry::timeseries::{recorder, Sampler};
use sg_telemetry::{Counter, Histogram, Report, Span};

static FLIGHT_COUNTER: Counter = Counter::new("test.flight.events");
static FLIGHT_SPAN: Span = Span::new("test.flight.region");
static FLIGHT_HIST: Histogram = Histogram::new("test.flight.lat_ns");

#[test]
fn recorder_samples_live_instruments_and_sampler_stops_on_drop() {
    FLIGHT_COUNTER.add(3);
    FLIGHT_SPAN.record(1_000);
    FLIGHT_HIST.record(64);
    assert!(recorder().tick());
    FLIGHT_COUNTER.add(4);
    {
        let _sampler = Sampler::start(Duration::from_millis(1));
        // Let the sampler take at least its immediate first frame plus a
        // few periodic ones.
        std::thread::sleep(Duration::from_millis(20));
    } // drop joins the sampler thread

    let rep = Report::timeseries();
    let frames_after_drop = rep.frames.len();
    assert!(
        frames_after_drop >= 2,
        "expected ≥2 frames, got {frames_after_drop}"
    );

    // Schema is self-describing: our instruments appear with the right
    // kind and unit.
    let col = |name: &str| {
        rep.schema
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    assert_eq!(col("test.flight.events").kind, "counter");
    assert_eq!(col("test.flight.region.total_ns").unit, "ns");
    assert_eq!(col("test.flight.lat_ns.p99").kind, "histogram");

    // The counter series is monotone non-decreasing and ends at the
    // final value.
    let series: Vec<u64> = rep
        .series("test.flight.events")
        .into_iter()
        .flatten()
        .collect();
    assert!(series.windows(2).all(|w| w[0] <= w[1]), "series {series:?}");
    assert_eq!(*series.last().unwrap(), 7);

    // The sampler thread is really gone: no frames accumulate anymore.
    std::thread::sleep(Duration::from_millis(15));
    assert_eq!(Report::timeseries().frames.len(), frames_after_drop);

    // JSON export round-trips and aligns values to the schema.
    let doc = rep.to_json();
    let parsed = sg_json::parse(&doc.to_string()).unwrap();
    let n_schema = parsed["schema"].as_array().unwrap().len();
    assert_eq!(n_schema, rep.schema.len());
    for f in parsed["frames"].as_array().unwrap() {
        assert_eq!(f["values"].as_array().unwrap().len(), n_schema);
    }
    assert_eq!(parsed["capacity"], rep.capacity as u64);
}
