//! Property tests for per-thread histogram merging.
//!
//! The parallel sweeps accumulate per-worker latency histograms and fold
//! them into one after the region; the fold is only sound if merging N
//! worker stats is **exactly** equivalent to recording every sample into
//! a single histogram. These properties pin that equivalence for
//! count/sum/bucket/max, and the distributional sanity (percentile
//! monotonicity) that downstream reports rely on.

use sg_prop::{run_cases, Rng};
use sg_telemetry::{bucket_index, HistogramStat, HIST_BUCKETS};

/// Samples spread across the interesting bucket regimes: zero, small,
/// mid, and the saturating top bucket.
fn arbitrary_sample(rng: &mut Rng) -> u64 {
    match rng.u8_in(0..=3) {
        0 => 0,
        1 => rng.u64_in(1..=1024),
        2 => rng.u64_in(1025..=(1 << 40)),
        _ => rng.u64_in((1 << 62)..=u64::MAX),
    }
}

#[test]
fn merging_worker_histograms_equals_single_recording() {
    run_cases("merge_equals_single", 200, |rng| {
        let workers = rng.usize_in(1..=8);
        let mut parts: Vec<HistogramStat> = Vec::new();
        let mut whole = HistogramStat::empty("prop.merge.whole");
        for _ in 0..workers {
            let mut part = HistogramStat::empty("prop.merge.part");
            for _ in 0..rng.usize_in(0..=64) {
                let v = arbitrary_sample(rng);
                part.record_sample(v);
                whole.record_sample(v);
            }
            parts.push(part);
        }
        let merged = sg_telemetry::timeseries::merge_histograms("prop.merge.whole", &parts);
        // Exact equivalence: count, wrapping sum, max, every bucket.
        assert_eq!(merged.count, whole.count);
        assert_eq!(merged.sum, whole.sum);
        assert_eq!(merged.max, whole.max);
        assert_eq!(merged.buckets, whole.buckets);
        assert_eq!(merged.buckets.len(), HIST_BUCKETS);
    });
}

#[test]
fn merge_is_order_independent() {
    run_cases("merge_order_independent", 100, |rng| {
        let mut parts: Vec<HistogramStat> = (0..rng.usize_in(2..=6))
            .map(|_| {
                let mut h = HistogramStat::empty("prop.merge.order");
                for _ in 0..rng.usize_in(0..=32) {
                    h.record_sample(arbitrary_sample(rng));
                }
                h
            })
            .collect();
        let forward = sg_telemetry::timeseries::merge_histograms("prop.merge.order", &parts);
        parts.reverse();
        let backward = sg_telemetry::timeseries::merge_histograms("prop.merge.order", &parts);
        assert_eq!(forward, backward);
    });
}

#[test]
fn merged_percentiles_are_monotone_and_bounded() {
    run_cases("merge_percentiles_monotone", 200, |rng| {
        let mut parts: Vec<HistogramStat> = Vec::new();
        let mut n_samples = 0usize;
        for _ in 0..rng.usize_in(1..=6) {
            let mut h = HistogramStat::empty("prop.merge.pct");
            for _ in 0..rng.usize_in(0..=48) {
                h.record_sample(arbitrary_sample(rng));
                n_samples += 1;
            }
            parts.push(h);
        }
        let merged = sg_telemetry::timeseries::merge_histograms("prop.merge.pct", &parts);
        let p50 = merged.percentile(50.0);
        let p90 = merged.percentile(90.0);
        let p99 = merged.percentile(99.0);
        assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        assert!(p99 <= merged.max, "p99 {p99} > max {}", merged.max);
        if n_samples > 0 {
            // p100 is exactly the maximum, and the max's bucket is
            // occupied.
            assert_eq!(merged.percentile(100.0), merged.max);
            assert!(merged.buckets[bucket_index(merged.max)] > 0);
        } else {
            assert_eq!(merged.count, 0);
            assert_eq!(p99, 0);
        }
    });
}

#[test]
fn merge_against_empty_is_identity() {
    run_cases("merge_empty_identity", 100, |rng| {
        let mut h = HistogramStat::empty("prop.merge.identity");
        for _ in 0..rng.usize_in(0..=40) {
            h.record_sample(arbitrary_sample(rng));
        }
        let merged = sg_telemetry::timeseries::merge_histograms(
            "prop.merge.identity",
            &[h.clone(), HistogramStat::empty("prop.merge.identity")],
        );
        assert_eq!(merged, h);
    });
}
