//! Trace ring-buffer behavior: enable/record/take, concurrent recording
//! from scoped worker threads, and capacity-bounded dropping.
//!
//! These tests manipulate the process-global trace state (enable, clear,
//! take_events), so they live in their own integration-test binary —
//! the unit tests in the library share one process and must not race
//! with this.

use std::time::{Duration, Instant};

use sg_telemetry::trace;

/// Each test drains its own events; they run in one process, so take a
/// lock to serialize them instead of asserting on global emptiness.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn record_is_noop_when_disabled() {
    let _guard = serial();
    trace::clear();
    trace::disable();
    assert!(!trace::is_enabled());
    let t0 = Instant::now();
    trace::record("test.disabled", 0, t0, t0, None);
    assert!(trace::take_events().is_empty());
}

#[test]
fn records_and_takes_sorted_events() {
    let _guard = serial();
    trace::clear();
    trace::enable();
    let t0 = Instant::now();
    let t1 = t0 + Duration::from_micros(10);
    let t2 = t0 + Duration::from_micros(20);
    trace::record("test.second", 0, t1, t2, None);
    trace::record("test.first", 1, t0, t1, Some(("group", 2)));
    trace::disable();
    let events = trace::take_events();
    assert_eq!(events.len(), 2);
    // Sorted by start time regardless of record order.
    assert_eq!(events[0].name, "test.first");
    assert_eq!(events[0].arg, Some(("group", 2)));
    assert_eq!(events[1].name, "test.second");
    assert!(events[0].ts_ns <= events[1].ts_ns);
    assert_eq!(events[1].dur_ns, 10_000);
    // Taking drains.
    assert!(trace::take_events().is_empty());
}

#[test]
fn concurrent_workers_flush_on_exit() {
    let _guard = serial();
    trace::clear();
    trace::enable();
    const WORKERS: u64 = 4;
    const PER_WORKER: usize = 250;
    std::thread::scope(|scope| {
        for slot in 0..WORKERS {
            scope.spawn(move || {
                for _ in 0..PER_WORKER {
                    let t0 = Instant::now();
                    trace::record("test.worker", slot + 1, t0, t0, None);
                }
                // Scope joins can fire before TLS destructors; the
                // explicit flush is the reliable hand-off.
                trace::flush_thread();
            });
        }
    });
    trace::disable();
    // Scoped threads have exited, so every ring has flushed to the pool.
    let events = trace::take_events();
    assert_eq!(events.len(), WORKERS as usize * PER_WORKER);
    for slot in 0..WORKERS {
        let lane = events.iter().filter(|e| e.tid == slot + 1).count();
        assert_eq!(lane, PER_WORKER, "worker {slot} events all present");
    }
    assert_eq!(trace::dropped(), 0);
}

#[test]
fn ring_wraps_at_capacity_and_counts_dropped() {
    let _guard = serial();
    trace::clear();
    trace::set_capacity(8);
    trace::enable();
    // Record on a dedicated thread so this test's ring fills in
    // isolation from the other tests' main-thread ring.
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..20u64 {
                let t0 = Instant::now();
                trace::record("test.wrap", 7, t0, t0, Some(("i", i)));
            }
            trace::flush_thread();
        });
    });
    trace::disable();
    let events: Vec<_> = trace::take_events()
        .into_iter()
        .filter(|e| e.name == "test.wrap")
        .collect();
    assert_eq!(events.len(), 8, "ring keeps exactly its capacity");
    assert_eq!(trace::dropped(), 12, "overwritten events are counted");
    // The survivors are the most recent records.
    let mut kept: Vec<u64> = events
        .iter()
        .filter_map(|e| e.arg.map(|(_, v)| v))
        .collect();
    kept.sort_unstable();
    assert_eq!(kept, (12..20).collect::<Vec<u64>>());
    trace::set_capacity(trace::DEFAULT_CAPACITY);
    trace::clear();
}

#[test]
fn chrome_trace_roundtrip_from_recorded_events() {
    let _guard = serial();
    trace::clear();
    trace::enable();
    let t0 = Instant::now();
    trace::record(
        "test.chrome",
        3,
        t0,
        t0 + Duration::from_nanos(1500),
        Some(("group", 9)),
    );
    trace::disable();
    let events = trace::take_events();
    let doc = trace::chrome_trace(&events);
    let reparsed = sg_json::parse(&doc.to_string()).unwrap();
    let evs = reparsed["traceEvents"].as_array().unwrap();
    let ev = evs
        .iter()
        .find(|e| e["name"] == "test.chrome")
        .expect("event rendered");
    assert_eq!(ev["ph"], "X");
    assert_eq!(ev["tid"], 3u64);
    assert_eq!(ev["dur"], 1.5);
    assert_eq!(ev["args"]["group"], 9u64);
}
