//! `reset()` contract: every instrument kind — counters, spans,
//! histograms — is zeroed (but stays registered), and the trace ring
//! buffers and region table are cleared too.
//!
//! Lives in its own integration-test binary because `reset()` wipes the
//! process-global registry, which would race the library's unit tests.

use std::time::Instant;

use sg_telemetry::{regions, reset, snapshot, trace, Counter, Histogram, Span};

static C: Counter = Counter::new("test.reset.counter");
static S: Span = Span::new("test.reset.span");
static H: Histogram = Histogram::new("test.reset.hist");

#[test]
fn reset_clears_every_instrument_kind() {
    C.add(5);
    S.record(1000);
    H.record(64);
    H.record(4096);
    trace::enable();
    let t0 = Instant::now();
    trace::record("test.reset.event", 1, t0, t0, None);
    trace::disable();
    regions::record_region("test.reset.region", None, &[10, 20], &[1, 2], &[3, 4]);

    let before = snapshot();
    assert_eq!(before.counter("test.reset.counter"), Some(5));
    assert_eq!(before.hist("test.reset.hist").unwrap().count, 2);

    reset();

    // Counters, spans, and histograms are zeroed but stay registered.
    let after = snapshot();
    assert_eq!(after.counter("test.reset.counter"), Some(0));
    let span = after
        .span("test.reset.span")
        .expect("span still registered");
    assert_eq!((span.count, span.total_ns), (0, 0));
    let hist = after
        .hist("test.reset.hist")
        .expect("hist still registered");
    assert_eq!(hist.count, 0);
    assert_eq!(hist.sum, 0);
    assert_eq!(hist.max, 0);
    assert!(hist.buckets.iter().all(|&b| b == 0));
    assert_eq!(hist.percentile(99.0), 0);

    // Trace buffers and the region table are gone too.
    assert!(trace::take_events().is_empty());
    assert_eq!(trace::dropped(), 0);
    assert!(regions::report().is_empty());

    // The instruments still work after a reset.
    C.add(2);
    H.record(8);
    let again = snapshot();
    assert_eq!(again.counter("test.reset.counter"), Some(2));
    assert_eq!(again.hist("test.reset.hist").unwrap().max, 8);
}
