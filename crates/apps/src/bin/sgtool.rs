//! `sgtool` — command-line front end for the compact sparse grid format.
//!
//! ```text
//! sgtool compress --dims 4 --level 6 --function parabola --out grid.sgc
//! sgtool info grid.sgc
//! sgtool eval grid.sgc 0.5,0.5,0.5,0.5 0.25,0.75,0.1,0.9
//! sgtool integrate grid.sgc
//! sgtool slice grid.sgc --axes 0,1 --at 0.5,0.5,0.5,0.5 [--width 64]
//! sgtool profile --dims 10 --level 7 --out trace.json
//! ```

use sg_baselines::StoreKind;
use sg_core::prelude::*;
use sg_core::quadrature::integrate;
use std::process::ExitCode;

/// Exit-code taxonomy, pinned by `tests/cli.rs`: scripts can distinguish
/// "you called it wrong" from "your data is bad" from "the disk failed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrClass {
    /// Bad invocation (missing/unknown flags, malformed arguments): 2.
    Usage,
    /// Corrupt or undecodable data (bad magic, checksum, lost sections): 3.
    Corrupt,
    /// The operating system failed us (read/write errors): 4.
    Io,
    /// Anything else: 1.
    Other,
}

/// One-line diagnostic plus its exit class.
#[derive(Debug)]
struct CliError {
    class: ErrClass,
    msg: String,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError {
            class: ErrClass::Usage,
            msg: msg.into(),
        }
    }
    fn corrupt(msg: impl Into<String>) -> Self {
        CliError {
            class: ErrClass::Corrupt,
            msg: msg.into(),
        }
    }
    fn io(msg: impl Into<String>) -> Self {
        CliError {
            class: ErrClass::Io,
            msg: msg.into(),
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError {
            class: ErrClass::Other,
            msg,
        }
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::from(msg.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("sgtool: missing command");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let metrics_path = flag(&args, "--metrics-json");
    // Validate the SG_KERNEL selection before doing any work: an unknown
    // or unavailable kernel request is a usage error, not a silent
    // scalar fallback mid-run.
    if let Err(e) = sg_core::kernel::resolve() {
        eprintln!("sgtool: {e}");
        return ExitCode::from(2);
    }
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "compress" => cmd_compress(rest),
        "checkpoint" => cmd_checkpoint(rest),
        "restore" => cmd_restore(rest),
        "verify" => cmd_verify(rest),
        "info" => cmd_info(rest),
        "eval" => cmd_eval(rest),
        "integrate" => cmd_integrate(rest),
        "slice" => cmd_slice(rest),
        "render" => cmd_render(rest),
        "profile" => cmd_profile(rest),
        "flight" => cmd_flight(rest),
        "gate" => cmd_gate(rest),
        "divergence" => cmd_divergence(rest),
        "combine" => cmd_combine(rest),
        "fuzz" => cmd_fuzz(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::usage(format!(
            "unknown command: {other}\n{USAGE}"
        ))),
    };
    let result = result.and_then(|()| {
        let Some(path) = metrics_path else {
            return Ok(());
        };
        let mut report = sg_telemetry::snapshot().to_json();
        report["provenance"] = sg_telemetry::provenance(&["telemetry"]);
        let regions = sg_telemetry::regions::report();
        report["regions"] = sg_telemetry::regions::to_json(&regions);
        std::fs::write(&path, format!("{}\n", report.to_string_pretty()))
            .map_err(|e| CliError::io(format!("cannot write metrics to {path}: {e}")))
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sgtool: {}", e.msg);
            ExitCode::from(match e.class {
                ErrClass::Usage => 2,
                ErrClass::Corrupt => 3,
                ErrClass::Io => 4,
                ErrClass::Other => 1,
            })
        }
    }
}

const USAGE: &str = "usage:
  sgtool compress --dims D --level L --function NAME --out FILE
                  (functions: parabola sine-product gaussian)
  sgtool checkpoint --out SNAP (--dims D --level L [--function NAME] | FILE)
                  [--provenance TEXT]
                  (write a crash-safe SGC2 sectioned snapshot: redundant
                  header+footer, one CRC64 section per level group,
                  atomic temp-file -> rename publish; FILE converts an
                  existing .sgc grid instead of sampling a function)
  sgtool restore SNAP --out FILE [--function NAME]
                  (salvage every intact section of a damaged snapshot;
                  lost level groups are listed and, with --function,
                  rebuilt exactly by re-sampling + re-hierarchizing;
                  without it a degraded snapshot exits 3)
  sgtool verify SNAP
                  (per-section integrity table; exit 0 intact, 3 damaged)
  sgtool info FILE
  sgtool eval FILE X1,...,XD [more points ...]
  sgtool integrate FILE
  sgtool slice FILE --axes A,B --at X1,...,XD [--width N]
  sgtool render FILE --out IMG.ppm [--axes A,B] [--at X1,...,XD] [--width N]
  sgtool profile [--dims D] [--level L] [--function NAME] [--reps R]
                 [--points K] [--out TRACE.json] [--top N]
                 [--from TRACE.json]
                  (defaults: d=10 level 7, 1 rep, 4096 eval points; runs
                  sample -> hierarchize -> evaluate -> dehierarchize with
                  tracing on, writes a Chrome Trace Event JSON loadable in
                  Perfetto, and prints span/histogram/imbalance summaries;
                  --from skips the run and summarizes an existing trace
                  file instead — a malformed or truncated trace exits 2
                  with a one-line diagnostic)
  sgtool flight [--dims D] [--level L] [--function NAME] [--reps R]
                [--points K] [--interval-ms MS] [--out flight.json]
                  (defaults: d=8 level 6, 4 reps, 4096 eval points, 5 ms
                  cadence; runs the profile workload with the in-process
                  flight recorder sampling every counter/span/histogram on
                  a fixed cadence into a lock-free ring, then writes the
                  self-describing time-series — schema with metric
                  name/kind/unit plus one frame per sample — as JSON)
  sgtool gate EXPERIMENT [more ...] [--results DIR] [--window N]
              [--min-runs N] [--k FACTOR] [--rel-floor FRAC] [--json PATH]
                  (perf-regression sentry: reads results/BENCH_<name>.json
                  trajectories, fits a median ± k*MAD noise band per metric
                  over the trailing window — defaults window 20, min-runs
                  5, k 6.0, rel-floor 0.10 — and exits 1 with a one-line
                  REGRESSION diagnosis when the newest run breaches it;
                  histories shorter than min-runs always pass)
  sgtool divergence [--dims D] [--level L] [--function NAME] [--points K]
                    [--machine NAME] [--top N] [--out REPORT.json]
                  (model-vs-measured: times each hierarchize/evaluate
                  level group, runs the same shape through the sg-machine
                  cache simulator, and prints per-group predicted DRAM
                  lines vs measured ns with a correlation coefficient and
                  the top-N groups the model explains worst; defaults
                  d=5 level 6, 2048 points, machine nehalem
                  (nehalem | opteron | opteron-aggregate | tiny), top 3)
  sgtool combine run --dims D --level L [--function NAME]
                     [--policy recompute|reweight] [--spare-diagonals S]
                     [--queries K] [--faults N] [--seed-base HEX]
                     [--out MANIFEST] [--json PATH] [--bench]
                  (fault-tolerant combination-technique executor: samples
                  every component grid as an independent task, checkpoints
                  the set through an SGCM manifest, recovers the run from
                  the manifest, and cross-validates the combined
                  interpolant against the direct sparse grid to 1e-9;
                  --faults injects N seeded faults — the 8 storage classes
                  plus task panics and dropped-pre-commit components —
                  and asserts detect-or-recover under both policies;
                  --bench appends results/BENCH_combine.json)
  sgtool combine verify MANIFEST
                  (per-component integrity table of an SGCM component-set
                  manifest; exit 0 intact, 3 damaged)
  sgtool fuzz [--budget-cases N] [--budget-secs S] [--seed-base HEX]
              [--op NAME[,NAME...]] [--shape DxN] [--sched-interleavings K]
              [--snapshot-faults N] [--combination-faults N]
              [--serve-chaos N] [--inject gp2idx-off-by-one] [--json PATH]
                  (differential fuzzing: compact vs recursive vs dense
                  oracle, plus the sg-par virtual-scheduler invariant
                  sweep; SG_PROP_SEED overrides the seed base; any
                  divergence is shrunk to a minimal seeded reproducer;
                  --inject self-tests the harness and fails unless the
                  fault is caught; defaults: 10000 cases, 200
                  interleavings per pool config, 0 snapshot faults;
                  --snapshot-faults injects torn writes, truncation, bit
                  flips, ENOSPC, and header/footer corruption into SGC2
                  snapshots and asserts detect-or-recover on every one;
                  --combination-faults injects the same storage classes
                  into combination-executor manifests plus component task
                  panics and dropped-pre-commit components, asserting
                  recompute restores bitwise identity and reweight stays
                  within its reported error bound;
                  --serve-chaos starts a live sgd daemon on loopback and
                  injects N network faults — torn frames, mid-response
                  disconnects, stalls, corrupted request bytes, connection
                  refusals, delayed bytes, random/truncated/oversized byte
                  streams — asserting every one either recovers bitwise
                  via client retry or surfaces as a typed error, with the
                  daemon healthy after each and draining cleanly at the
                  end)

exit codes:
  0 success   2 usage error   3 corrupt or degraded data   4 I/O failure
  1 anything else

global flags:
  --metrics-json PATH   after a successful command, write the telemetry
                        snapshot (span timings, call counters, histogram
                        percentiles, bytes moved, region imbalance,
                        provenance) to PATH as JSON

environment:
  SG_KERNEL             compute-kernel selection: auto (default), scalar,
                        avx2, neon; unknown or unavailable values exit 2;
                        the dispatched kernel is stamped into provenance
  SG_PAR_THREADS        worker-thread count for the parallel sweeps
  SG_FLIGHT_CAPACITY    ring capacity (frames) of the flight recorder
  SG_GATE_BASELINE      when set, `sgtool gate` reports regressions but
                        exits 0 — acknowledge an intentional perf change
                        while the trajectory re-baselines";

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|p| args.get(p + 1).cloned())
}

/// Arguments that are neither flags nor flag values (so a flag's value is
/// never mistaken for the grid file or an evaluation point).
fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        if a.starts_with("--") {
            // Consume the flag's value, if any.
            if iter.peek().is_some_and(|n| !n.starts_with("--")) {
                iter.next();
            }
        } else {
            out.push(a);
        }
    }
    out
}

fn parse_point(s: &str, d: usize) -> Result<Vec<f64>, String> {
    let v: Result<Vec<f64>, _> = s.split(',').map(str::parse).collect();
    let v = v.map_err(|e| format!("bad coordinate list {s:?}: {e}"))?;
    if v.len() != d {
        return Err(format!(
            "point {s:?} has {} coordinates, grid has {d}",
            v.len()
        ));
    }
    if v.iter().any(|&c| !(0.0..=1.0).contains(&c)) {
        return Err(format!("point {s:?} leaves the unit domain"));
    }
    Ok(v)
}

/// Read a grid file, sniffing the format: `SGC2` snapshots decode
/// through the strict sectioned reader (a damaged one is a corrupt-data
/// error enumerating the lost groups), anything else through the legacy
/// `SGC1` codec.
fn load(args: &[String]) -> Result<CompactGrid<f64>, CliError> {
    let path = *positional(args)
        .first()
        .ok_or_else(|| CliError::usage("missing grid file argument"))?;
    let blob = std::fs::read(path).map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    if blob.starts_with(&sg_io::SNAP_MAGIC) {
        sg_io::read_snapshot(&blob)
            .map_err(|e| CliError::corrupt(format!("cannot read snapshot {path}: {e}")))
    } else {
        sg_io::decode(&blob).map_err(|e| CliError::corrupt(format!("cannot decode {path}: {e}")))
    }
}

/// Shared by compress/checkpoint: build a hierarchized grid from
/// `--dims/--level/--function`, with a preflight point-count check so an
/// overflowing shape is a diagnostic, not a panic.
fn build_grid(args: &[String]) -> Result<(CompactGrid<f64>, &'static TestFunction), CliError> {
    let d: usize = flag(args, "--dims")
        .ok_or_else(|| CliError::usage("missing --dims"))?
        .parse()
        .map_err(|e| CliError::usage(format!("bad --dims: {e}")))?;
    let level: usize = flag(args, "--level")
        .ok_or_else(|| CliError::usage("missing --level"))?
        .parse()
        .map_err(|e| CliError::usage(format!("bad --level: {e}")))?;
    let fname = flag(args, "--function").unwrap_or_else(|| "parabola".into());
    let f = TestFunction::ALL
        .iter()
        .find(|f| f.name() == fname)
        .ok_or_else(|| CliError::usage(format!("unknown function {fname:?}")))?;
    let spec =
        GridSpec::try_new(d, level).map_err(|e| CliError::usage(format!("bad grid shape: {e}")))?;
    spec.try_num_points()
        .map_err(|e| CliError::usage(format!("grid too large: {e}")))?;
    let mut grid = CompactGrid::try_from_fn_parallel(spec, |x| f.eval(x))
        .map_err(|e| CliError::usage(format!("cannot build grid: {e}")))?;
    hierarchize_parallel(&mut grid);
    Ok((grid, f))
}

fn cmd_compress(args: &[String]) -> Result<(), CliError> {
    let out = flag(args, "--out").ok_or_else(|| CliError::usage("missing --out"))?;
    let (grid, f) = build_grid(args)?;
    let blob = sg_io::encode(&grid);
    std::fs::write(&out, &blob).map_err(|e| CliError::io(format!("cannot write {out}: {e}")))?;
    println!(
        "compressed {} ({} points, d={}, level {}) -> {out} ({} bytes)",
        f.name(),
        grid.len(),
        grid.spec().dim(),
        grid.spec().levels(),
        blob.len()
    );
    Ok(())
}

fn cmd_checkpoint(args: &[String]) -> Result<(), CliError> {
    let out = flag(args, "--out").ok_or_else(|| CliError::usage("missing --out"))?;
    let provenance = flag(args, "--provenance")
        .unwrap_or_else(|| format!("sgtool checkpoint v{}", env!("CARGO_PKG_VERSION")));
    let (grid, origin) = if positional(args).is_empty() {
        let (grid, f) = build_grid(args)?;
        (grid, f.name().to_string())
    } else {
        let grid = load(args)?;
        (grid, positional(args)[0].clone())
    };
    sg_io::write_snapshot_file(&grid, &out, &provenance).map_err(|e| match e {
        SgError::Io(_) => CliError::io(format!("cannot write {out}: {e}")),
        other => CliError::from(format!("cannot checkpoint: {other}")),
    })?;
    println!(
        "checkpointed {origin} ({} points, d={}, level {}) -> {out} ({} sections)",
        grid.len(),
        grid.spec().dim(),
        grid.spec().levels(),
        grid.spec().levels(),
    );
    Ok(())
}

fn cmd_restore(args: &[String]) -> Result<(), CliError> {
    let path = *positional(args)
        .first()
        .ok_or_else(|| CliError::usage("missing snapshot file argument"))?;
    let out = flag(args, "--out").ok_or_else(|| CliError::usage("missing --out"))?;
    let bytes =
        std::fs::read(path).map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    let recovery = sg_io::recover_snapshot::<f64>(&bytes)
        .map_err(|e| CliError::corrupt(format!("cannot recover {path}: {e}")))?;
    if recovery.used_footer {
        println!("header corrupt; identity recovered from the footer copy");
    }
    let intact = recovery
        .sections
        .iter()
        .filter(|s| s.status == sg_io::SectionStatus::Intact)
        .count();
    println!(
        "{path}: {intact}/{} sections intact (written by {:?})",
        recovery.sections.len(),
        recovery.info.provenance
    );
    let grid = if recovery.grid.is_complete() {
        recovery.grid.into_complete().expect("complete")
    } else {
        let lost = recovery.grid.lost_groups().to_vec();
        let Some(fname) = flag(args, "--function") else {
            return Err(CliError::corrupt(format!(
                "level groups {lost:?} lost; pass --function NAME to rebuild them \
                 by re-sampling, or accept the loss with `sgtool verify`"
            )));
        };
        let f = TestFunction::ALL
            .iter()
            .find(|f| f.name() == fname)
            .ok_or_else(|| CliError::usage(format!("unknown function {fname:?}")))?;
        println!("rebuilding lost level groups {lost:?} from {fname}");
        recovery.grid.repair_with(|x| f.eval(x))
    };
    let blob = sg_io::encode(&grid);
    std::fs::write(&out, &blob).map_err(|e| CliError::io(format!("cannot write {out}: {e}")))?;
    println!(
        "restored {} points (d={}, level {}) -> {out}",
        grid.len(),
        grid.spec().dim(),
        grid.spec().levels()
    );
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), CliError> {
    let path = *positional(args)
        .first()
        .ok_or_else(|| CliError::usage("missing snapshot file argument"))?;
    let bytes =
        std::fs::read(path).map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    let (info, sections, used_footer) = sg_io::verify_snapshot(&bytes)
        .map_err(|e| CliError::corrupt(format!("cannot verify {path}: {e}")))?;
    println!(
        "{path}: SGC2 v{} d={} level {} ({} points, {}, provenance {:?})",
        info.version,
        info.dim,
        info.levels,
        info.num_points,
        if info.value_type == 0 { "f32" } else { "f64" },
        info.provenance
    );
    if used_footer {
        println!("warning: leading header corrupt, identity read from footer");
    }
    println!("{:>7} {:>12} {:>10}  status", "section", "offset", "points");
    let mut lost = Vec::new();
    for s in &sections {
        let status = match s.status {
            sg_io::SectionStatus::Intact => "intact",
            sg_io::SectionStatus::Truncated => "TRUNCATED",
            sg_io::SectionStatus::BadHeader => "BAD HEADER",
            sg_io::SectionStatus::ChecksumMismatch => "CHECKSUM MISMATCH",
        };
        println!("{:>7} {:>12} {:>10}  {status}", s.group, s.offset, s.points);
        if s.status != sg_io::SectionStatus::Intact {
            lost.push(s.group);
        }
    }
    if lost.is_empty() {
        println!("all {} sections intact", sections.len());
        Ok(())
    } else {
        Err(CliError::corrupt(format!(
            "{}/{} sections damaged (level groups {lost:?}); \
             `sgtool restore --function NAME` can rebuild them",
            lost.len(),
            sections.len()
        )))
    }
}

fn cmd_combine(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_combine_run(&args[1..]),
        Some("verify") => cmd_combine_verify(&args[1..]),
        Some(other) => Err(CliError::usage(format!(
            "unknown combine subcommand: {other} (expected run or verify)"
        ))),
        None => Err(CliError::usage(
            "missing combine subcommand (expected run or verify)",
        )),
    }
}

fn cmd_combine_run(args: &[String]) -> Result<(), CliError> {
    use sg_combination::{CombinationExecutor, ExecutorConfig, RecoveryPolicy, RunOutcome};

    let d: usize = flag(args, "--dims")
        .ok_or_else(|| CliError::usage("missing --dims"))?
        .parse()
        .map_err(|e| CliError::usage(format!("bad --dims: {e}")))?;
    let level: usize = flag(args, "--level")
        .ok_or_else(|| CliError::usage("missing --level"))?
        .parse()
        .map_err(|e| CliError::usage(format!("bad --level: {e}")))?;
    let fname = flag(args, "--function").unwrap_or_else(|| "parabola".into());
    let f = TestFunction::ALL
        .iter()
        .find(|f| f.name() == fname)
        .ok_or_else(|| CliError::usage(format!("unknown function {fname:?}")))?;
    let policy = match flag(args, "--policy").as_deref() {
        None | Some("recompute") => RecoveryPolicy::Recompute,
        Some("reweight") => RecoveryPolicy::Reweight,
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown --policy {other:?} (expected recompute or reweight)"
            )))
        }
    };
    let spare_diagonals: usize = match flag(args, "--spare-diagonals") {
        Some(s) => s
            .parse()
            .map_err(|e| CliError::usage(format!("bad --spare-diagonals: {e}")))?,
        None => 1,
    };
    let queries: usize = match flag(args, "--queries") {
        Some(s) => s
            .parse()
            .map_err(|e| CliError::usage(format!("bad --queries: {e}")))?,
        None => 256,
    };
    let faults: u64 = match flag(args, "--faults") {
        Some(s) => s
            .parse()
            .map_err(|e| CliError::usage(format!("bad --faults: {e}")))?,
        None => 0,
    };
    let seed_base = parse_u64_flag(args, "--seed-base")?.unwrap_or(0x5EED_C04B);
    let spec =
        GridSpec::try_new(d, level).map_err(|e| CliError::usage(format!("bad grid shape: {e}")))?;
    spec.try_num_points()
        .map_err(|e| CliError::usage(format!("grid too large: {e}")))?;

    let exec = CombinationExecutor::with_config(
        spec,
        ExecutorConfig {
            policy,
            spare_diagonals,
            provenance: format!("sgtool combine v{}", env!("CARGO_PKG_VERSION")),
        },
    );

    // Compute → checkpoint → recover, keeping the manifest bytes so the
    // published artifact is exactly what the run was recovered from.
    let t0 = std::time::Instant::now();
    let components = exec
        .compute_components(|x| f.eval(x))
        .map_err(|e| CliError::from(format!("component sampling failed: {e}")))?;
    let compute_secs = t0.elapsed().as_secs_f64();
    let mut sink = sg_io::MemorySink::new();
    exec.checkpoint(&components, &mut sink, None)
        .map_err(|e| CliError::from(format!("cannot checkpoint components: {e}")))?;
    let bytes = sink
        .into_published()
        .ok_or_else(|| CliError::io("checkpoint did not commit".to_string()))?;
    if let Some(out) = flag(args, "--out") {
        std::fs::write(&out, &bytes)
            .map_err(|e| CliError::io(format!("cannot write {out}: {e}")))?;
        println!(
            "manifest: {out} ({} bytes, {} components)",
            bytes.len(),
            components.len()
        );
    }
    let t1 = std::time::Instant::now();
    let run = exec
        .recover_run(&bytes, |x| f.eval(x))
        .map_err(|e| match e {
            SgError::Corrupt(_) | SgError::Degraded { .. } => {
                CliError::corrupt(format!("cannot recover run: {e}"))
            }
            SgError::Io(_) => CliError::io(format!("cannot recover run: {e}")),
            other => CliError::from(format!("cannot recover run: {other}")),
        })?;
    let recover_secs = t1.elapsed().as_secs_f64();
    println!(
        "combine run: {} d={d} level {level} policy={} — {} tasks ({} spare), outcome {:?}",
        f.name(),
        policy.name(),
        run.tasks,
        run.spares,
        run.outcome
    );

    // Cross-validate against the direct sparse grid interpolant: the
    // combination identity is exact for interpolation, so the two must
    // agree to 1e-9 (relative to the surplus scale) at every probe.
    let t2 = std::time::Instant::now();
    let mut direct = CompactGrid::try_from_fn_parallel(spec, |x| f.eval(x))
        .map_err(|e| CliError::usage(format!("cannot build direct grid: {e}")))?;
    hierarchize_parallel(&mut direct);
    let scale = direct.values().iter().fold(1.0f64, |m, &v| m.max(v.abs()));
    let xs = sg_core::functions::halton_points(d, queries);
    let mut max_diff = 0.0f64;
    for x in xs.chunks_exact(d) {
        max_diff = max_diff.max((run.grid.evaluate(x) - evaluate(&direct, x)).abs());
    }
    let crossval_secs = t2.elapsed().as_secs_f64();
    let tolerance = 1e-9 * scale;
    let cross_validated = max_diff <= tolerance;
    println!(
        "cross-validation: max |combination − direct| = {max_diff:.3e} over {queries} points \
         (tolerance {tolerance:.3e}) — {}",
        if cross_validated { "ok" } else { "FAILED" }
    );

    // Optional fault-injection sweep with the same executor shape class.
    let comb_report = if faults > 0 {
        let r = sg_fuzz::run_combination_faults(seed_base, faults);
        println!(
            "faults: {} injected ({} recompute / {} reweight) — {} full, {} partial, \
             {} clean-error, {} violation(s)",
            r.cases,
            r.per_policy.0,
            r.per_policy.1,
            r.full_recoveries,
            r.partial_recoveries,
            r.clean_errors,
            r.violations.len()
        );
        for v in &r.violations {
            println!("\n{v}");
        }
        Some(r)
    } else {
        None
    };

    if args.iter().any(|a| a == "--bench") {
        let traj = vec![
            ("compute_s".to_string(), compute_secs),
            ("recover_s".to_string(), recover_secs),
            ("crossval_s".to_string(), crossval_secs),
        ];
        if let Err(e) = sg_bench::trajectory::record_run_scalars("combine", &traj) {
            eprintln!("warning: could not record BENCH_combine.json: {e}");
        }
    }

    if let Some(path) = flag(args, "--json") {
        let mut doc = sg_json::json!({
            "dims": d as f64,
            "level": level as f64,
            "function": f.name(),
            "policy": policy.name(),
            "spare_diagonals": spare_diagonals as f64,
            "tasks": run.tasks as f64,
            "spares": run.spares as f64,
            "outcome": match &run.outcome {
                RunOutcome::Clean => "clean",
                RunOutcome::Recomputed { .. } => "recomputed",
                RunOutcome::Reweighted { .. } => "reweighted",
            },
            "lost_components": run.lost_components.iter().map(|&k| k as f64).collect::<Vec<_>>(),
            "manifest_bytes": bytes.len() as f64,
            "queries": queries as f64,
            "max_abs_diff": max_diff,
            "tolerance": tolerance,
            "cross_validated": cross_validated,
            "compute_secs": compute_secs,
            "recover_secs": recover_secs,
            "crossval_secs": crossval_secs
        });
        if let Some(r) = &comb_report {
            let mut per_class = sg_json::json!({});
            for (name, count) in &r.per_class {
                per_class[*name] = sg_json::Value::from(*count as f64);
            }
            let mut cf = sg_json::json!({
                "cases": r.cases as f64,
                "seed_base": format!("{:#x}", r.seed_base),
                "recompute_cases": r.per_policy.0 as f64,
                "reweight_cases": r.per_policy.1 as f64,
                "full_recoveries": r.full_recoveries as f64,
                "partial_recoveries": r.partial_recoveries as f64,
                "clean_errors": r.clean_errors as f64,
                "violations": r.violations.clone(),
                "elapsed_secs": r.elapsed_secs
            });
            cf["per_class"] = per_class;
            doc["faults"] = cf;
        }
        doc["provenance"] = sg_telemetry::provenance(&["telemetry"]);
        std::fs::write(&path, format!("{}\n", doc.to_string_pretty()))
            .map_err(|e| CliError::io(format!("cannot write combine report to {path}: {e}")))?;
        println!("report: {path}");
    }

    if !cross_validated {
        return Err(CliError::from(format!(
            "combination deviates from the direct interpolant by {max_diff:.3e} \
             (tolerance {tolerance:.3e})"
        )));
    }
    if let Some(r) = &comb_report {
        if !r.clean() {
            return Err(CliError::from(format!(
                "{} combination fault-injection violation(s) — see reproducers above",
                r.violations.len()
            )));
        }
    }
    Ok(())
}

fn cmd_combine_verify(args: &[String]) -> Result<(), CliError> {
    let path = *positional(args)
        .first()
        .ok_or_else(|| CliError::usage("missing manifest file argument"))?;
    let bytes =
        std::fs::read(path).map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    let (info, sections, used_footer) = sg_io::verify_component_set(&bytes)
        .map_err(|e| CliError::corrupt(format!("cannot verify {path}: {e}")))?;
    println!(
        "{path}: SGCM v{} d={} ({} components, {}, provenance {:?})",
        info.version,
        info.dim,
        info.components.len(),
        if info.value_type == 0 { "f32" } else { "f64" },
        info.provenance
    );
    if used_footer {
        println!("warning: leading header corrupt, identity read from footer");
    }
    println!(
        "{:>9} {:>5} {:>14} {:>10} {:>12}  status",
        "component", "coef", "levels", "points", "offset"
    );
    let mut lost = Vec::new();
    for (s, meta) in sections.iter().zip(&info.components) {
        let status = match s.status {
            sg_io::SectionStatus::Intact => "intact",
            sg_io::SectionStatus::Truncated => "TRUNCATED",
            sg_io::SectionStatus::BadHeader => "BAD HEADER",
            sg_io::SectionStatus::ChecksumMismatch => "CHECKSUM MISMATCH",
        };
        let levels: Vec<String> = meta.levels.iter().map(|l| l.to_string()).collect();
        println!(
            "{:>9} {:>5} {:>14} {:>10} {:>12}  {status}",
            s.group,
            meta.coefficient,
            levels.join(","),
            s.points,
            s.offset
        );
        if s.status != sg_io::SectionStatus::Intact {
            lost.push(s.group);
        }
    }
    if lost.is_empty() {
        println!("all {} components intact", sections.len());
        Ok(())
    } else {
        Err(CliError::corrupt(format!(
            "{}/{} components damaged ({lost:?}); `sgtool combine run` with the recompute \
             policy rebuilds them exactly, reweight survives without re-sampling",
            lost.len(),
            sections.len()
        )))
    }
}

fn cmd_info(args: &[String]) -> Result<(), CliError> {
    let grid = load(args)?;
    let spec = grid.spec();
    println!("dimensionality : {}", spec.dim());
    println!("level          : {}", spec.levels());
    println!("points         : {}", grid.len());
    println!("memory         : {} bytes", grid.memory_bytes());
    let max = grid.values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    println!("max |surplus|  : {max:.6e}");
    println!("integral       : {:.6e}", integrate(&grid));
    Ok(())
}

fn cmd_eval(args: &[String]) -> Result<(), CliError> {
    let grid = load(args)?;
    let d = grid.spec().dim();
    // First positional argument is the grid file; the rest are points
    // (comma-separated coordinates; a bare number for 1-d grids).
    let points = &positional(args)[1..];
    if points.is_empty() {
        return Err("no evaluation points given".into());
    }
    for p in points {
        let x = parse_point(p, d)?;
        println!("u({p}) = {:.10}", evaluate(&grid, &x));
    }
    Ok(())
}

fn cmd_integrate(args: &[String]) -> Result<(), CliError> {
    let grid = load(args)?;
    println!("{:.12}", integrate(&grid));
    Ok(())
}

/// Decompress a 2-d slice through the grid: returns (values, width,
/// height, axes, anchor, lo, hi).
#[allow(clippy::type_complexity)]
fn decompress_slice(
    args: &[String],
    aspect: f64,
) -> Result<(Vec<f64>, usize, usize, (usize, usize), Vec<f64>, f64, f64), CliError> {
    let grid = load(args)?;
    let d = grid.spec().dim();
    let axes = flag(args, "--axes").unwrap_or_else(|| "0,1".into());
    let (a, b) = axes
        .split_once(',')
        .ok_or("--axes expects two comma-separated indices")?;
    let (a, b): (usize, usize) = (
        a.parse().map_err(|e| format!("bad axis: {e}"))?,
        b.parse().map_err(|e| format!("bad axis: {e}"))?,
    );
    if a >= d || b >= d || a == b {
        return Err(CliError::usage(format!(
            "axes {a},{b} invalid for a {d}-dimensional grid"
        )));
    }
    let at = flag(args, "--at")
        .map(|s| parse_point(&s, d))
        .transpose()?
        .unwrap_or_else(|| vec![0.5; d]);
    let width: usize = flag(args, "--width")
        .map(|s| s.parse().map_err(|e| format!("bad --width: {e}")))
        .transpose()?
        .unwrap_or(64);
    if width < 2 {
        return Err("--width must be at least 2".into());
    }
    let height = ((width as f64 * aspect) as usize).max(2);

    let mut pixels = Vec::with_capacity(width * height * d);
    for row in 0..height {
        for col in 0..width {
            let mut x = at.clone();
            x[a] = col as f64 / (width - 1) as f64;
            x[b] = 1.0 - row as f64 / (height - 1) as f64;
            pixels.extend_from_slice(&x);
        }
    }
    let values = evaluate_batch_parallel(&grid, &pixels, 64);
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    Ok((values, width, height, (a, b), at, lo, hi))
}

fn cmd_slice(args: &[String]) -> Result<(), CliError> {
    let (values, width, height, (a, b), at, lo, hi) = decompress_slice(args, 0.5)?;
    let range = (hi - lo).max(1e-12);
    const SHADES: &[u8] = b" .:-=+*#%@";
    for row in 0..height {
        let line: String = (0..width)
            .map(|col| {
                let v = (values[row * width + col] - lo) / range;
                SHADES[((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1)]
                    as char
            })
            .collect();
        println!("{line}");
    }
    println!("axes x={a} y={b}, slice at {at:?}, range [{lo:.3e}, {hi:.3e}]");
    Ok(())
}

/// Perceptually-ordered 5-stop colour ramp (dark blue → teal → green →
/// yellow), linearly interpolated.
fn colormap(v: f64) -> [u8; 3] {
    const STOPS: [[f64; 3]; 5] = [
        [68.0, 1.0, 84.0],
        [59.0, 82.0, 139.0],
        [33.0, 145.0, 140.0],
        [94.0, 201.0, 98.0],
        [253.0, 231.0, 37.0],
    ];
    let pos = v.clamp(0.0, 1.0) * (STOPS.len() - 1) as f64;
    let k = (pos as usize).min(STOPS.len() - 2);
    let w = pos - k as f64;
    let mut rgb = [0u8; 3];
    for c in 0..3 {
        rgb[c] = (STOPS[k][c] + w * (STOPS[k + 1][c] - STOPS[k][c])).round() as u8;
    }
    rgb
}

/// Profile a hierarchize/evaluate workload with tracing enabled: emit a
/// Chrome Trace Event JSON (loadable in `chrome://tracing` / Perfetto)
/// and print a human-readable summary — top-k spans by total time,
/// histogram percentiles, and the per-level-group load-imbalance report
/// that diagnoses the paper's Fig. 11 speedup flattening.
fn cmd_profile(args: &[String]) -> Result<(), CliError> {
    if let Some(path) = flag(args, "--from") {
        return summarize_trace(args, &path);
    }
    let parse_flag = |key: &str, default: usize| -> Result<usize, String> {
        flag(args, key)
            .map(|s| s.parse().map_err(|e| format!("bad {key}: {e}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let d = parse_flag("--dims", 10)?;
    let level = parse_flag("--level", 7)?;
    let reps = parse_flag("--reps", 1)?.max(1);
    let n_points = parse_flag("--points", 4096)?;
    let top = parse_flag("--top", 10)?.max(1);
    let out = flag(args, "--out").unwrap_or_else(|| "profile_trace.json".into());
    let fname = flag(args, "--function").unwrap_or_else(|| "gaussian".into());
    let f = TestFunction::ALL
        .iter()
        .find(|f| f.name() == fname)
        .ok_or_else(|| format!("unknown function {fname:?}"))?;
    let spec = GridSpec::try_new(d, level).map_err(|e| e.to_string())?;

    // Deterministic quasi-random evaluation points (Weyl sequence).
    let mut xs = Vec::with_capacity(n_points * d);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..n_points * d {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        xs.push((state >> 11) as f64 / (1u64 << 53) as f64);
    }

    // Everything inside this window lands in the trace.
    sg_telemetry::trace::enable();
    let t_all = std::time::Instant::now();
    let mut grid = CompactGrid::from_fn_parallel(spec, |x| f.eval(x));
    for _ in 0..reps {
        hierarchize_parallel(&mut grid);
        let _values = evaluate_batch_parallel(&grid, &xs, 64);
        dehierarchize_parallel(&mut grid);
    }
    hierarchize_parallel(&mut grid);
    let wall = t_all.elapsed();
    sg_telemetry::trace::disable();

    let events = sg_telemetry::trace::take_events();
    let dropped = sg_telemetry::trace::dropped();
    let regions = sg_telemetry::regions::report();
    let report = sg_telemetry::snapshot();

    // Trace file: standard traceEvents plus an "sg" metadata key that
    // viewers ignore but tooling can read back.
    let mut doc = sg_telemetry::trace::chrome_trace(&events);
    let mut sg = sg_json::json!({ "dropped_events": dropped as f64 });
    sg["provenance"] = sg_telemetry::provenance(&["telemetry"]);
    sg["regions"] = sg_telemetry::regions::to_json(&regions);
    sg["workload"] = sg_json::json!({
        "dims": d as f64, "level": level as f64, "points": grid.len() as f64,
        "function": f.name(), "reps": reps as f64, "eval_points": n_points as f64
    });
    doc["sg"] = sg;
    std::fs::write(&out, format!("{doc}\n"))
        .map_err(|e| format!("cannot write trace to {out}: {e}"))?;

    println!(
        "profiled d={d} level={level} ({} points, {} reps) in {:.1} ms on {} threads",
        grid.len(),
        reps,
        wall.as_secs_f64() * 1e3,
        sg_par::num_threads()
    );
    println!(
        "trace: {out} ({} events{}) — open in chrome://tracing or ui.perfetto.dev",
        events.len(),
        if dropped > 0 {
            format!(", {dropped} dropped")
        } else {
            String::new()
        }
    );

    println!("\ntop {top} spans by total time:");
    let mut spans = report.spans.clone();
    spans.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
    println!(
        "  {:<38} {:>8} {:>12} {:>12}",
        "span", "count", "total_ms", "mean_us"
    );
    for s in spans.iter().take(top) {
        println!(
            "  {:<38} {:>8} {:>12.3} {:>12.2}",
            s.name,
            s.count,
            s.total_ns as f64 / 1e6,
            s.total_ns as f64 / s.count.max(1) as f64 / 1e3
        );
    }

    println!("\nlatency histograms (ns):");
    println!(
        "  {:<38} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "histogram", "count", "p50", "p90", "p99", "max"
    );
    for h in &report.hists {
        println!(
            "  {:<38} {:>8} {:>10} {:>10} {:>10} {:>10}",
            h.name,
            h.count,
            h.percentile(50.0),
            h.percentile(90.0),
            h.percentile(99.0),
            h.max
        );
    }

    println!("\nper-region load imbalance (busy/wait per worker, ms; chunks claimed per worker):");
    for r in &regions {
        let fmt_ms = |ns: &[u64]| -> String {
            ns.iter()
                .map(|&v| format!("{:.2}", v as f64 / 1e6))
                .collect::<Vec<_>>()
                .join("/")
        };
        let fmt_n = |ns: &[u64]| -> String {
            ns.iter()
                .map(|&v| v.to_string())
                .collect::<Vec<_>>()
                .join("/")
        };
        println!(
            "  {:<38} x{:<5} busy [{}] wait [{}] chunks [{}] imbalance {:.2}",
            r.key(),
            r.count,
            fmt_ms(&r.busy_ns),
            fmt_ms(&r.wait_ns),
            fmt_n(&r.chunks),
            r.imbalance()
        );
    }
    Ok(())
}

/// `sgtool profile --from`: summarize an existing Chrome-trace file
/// instead of running a workload. A trace that does not parse or lacks
/// the `traceEvents` array is a *usage* error — exit 2 with one line —
/// so scripts piping stale or truncated traces fail loudly and cheaply.
fn summarize_trace(args: &[String], path: &str) -> Result<(), CliError> {
    let top: usize = flag(args, "--top")
        .map(|s| s.parse().map_err(|e| format!("bad --top: {e}")))
        .transpose()?
        .unwrap_or(10)
        .max(1);
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read trace {path}: {e}")))?;
    let doc = sg_json::parse(&text)
        .map_err(|e| CliError::usage(format!("malformed trace {path}: {e}")))?;
    let events = doc["traceEvents"]
        .as_array()
        .ok_or_else(|| CliError::usage(format!("malformed trace {path}: no traceEvents array")))?;

    // Sum complete ("X") event durations by name; everything else is
    // metadata we skip.
    let mut by_name: Vec<(String, u64, f64)> = Vec::new();
    let mut spans = 0usize;
    for ev in events {
        if ev["ph"].as_str() != Some("X") {
            continue;
        }
        let (Some(name), Some(dur)) = (ev["name"].as_str(), ev["dur"].as_f64()) else {
            return Err(CliError::usage(format!(
                "malformed trace {path}: event without name/dur"
            )));
        };
        spans += 1;
        match by_name.iter_mut().find(|(n, _, _)| n == name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += dur;
            }
            None => by_name.push((name.to_string(), 1, dur)),
        }
    }
    println!("{path}: {} events ({spans} spans)", events.len());
    by_name.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("  {:<38} {:>8} {:>12}", "span", "count", "total_ms");
    for (name, count, total_us) in by_name.iter().take(top) {
        println!("  {name:<38} {count:>8} {:>12.3}", total_us / 1e3);
    }
    let sg = &doc["sg"];
    if !sg.is_null() {
        if let Some(dropped) = sg["dropped_events"].as_f64() {
            if dropped > 0.0 {
                println!("  ({dropped} events dropped at capture time)");
            }
        }
        let w = &sg["workload"];
        if !w.is_null() {
            println!(
                "workload: d={} level={} {} ({} reps, {} eval points)",
                w["dims"].as_f64().unwrap_or(0.0),
                w["level"].as_f64().unwrap_or(0.0),
                w["function"].as_str().unwrap_or("?"),
                w["reps"].as_f64().unwrap_or(0.0),
                w["eval_points"].as_f64().unwrap_or(0.0),
            );
        }
    }
    Ok(())
}

/// Run the profile workload with the flight recorder sampling the full
/// instrument registry on a fixed cadence, then export the time-series.
fn cmd_flight(args: &[String]) -> Result<(), CliError> {
    let parse_flag = |key: &str, default: usize| -> Result<usize, String> {
        flag(args, key)
            .map(|s| s.parse().map_err(|e| format!("bad {key}: {e}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let d = parse_flag("--dims", 8)?;
    let level = parse_flag("--level", 6)?;
    let reps = parse_flag("--reps", 4)?.max(1);
    let n_points = parse_flag("--points", 4096)?;
    let interval_ms = parse_flag("--interval-ms", 5)?.max(1);
    let out = flag(args, "--out").unwrap_or_else(|| "flight.json".into());
    let fname = flag(args, "--function").unwrap_or_else(|| "gaussian".into());
    let f = TestFunction::ALL
        .iter()
        .find(|f| f.name() == fname)
        .ok_or_else(|| CliError::usage(format!("unknown function {fname:?}")))?;
    let spec =
        GridSpec::try_new(d, level).map_err(|e| CliError::usage(format!("bad grid shape: {e}")))?;

    let xs = halton_points(d, n_points);
    let sampler = sg_telemetry::timeseries::Sampler::start(std::time::Duration::from_millis(
        interval_ms as u64,
    ));
    let t_all = std::time::Instant::now();
    let mut grid = CompactGrid::from_fn_parallel(spec, |x| f.eval(x));
    for _ in 0..reps {
        hierarchize_parallel(&mut grid);
        let _values = evaluate_batch_parallel(&grid, &xs, 64);
        dehierarchize_parallel(&mut grid);
    }
    let wall = t_all.elapsed();
    drop(sampler); // final frame, then the sampling thread joins

    let series = sg_telemetry::Report::timeseries();
    let mut doc = series.to_json();
    doc["provenance"] = sg_telemetry::provenance(&["telemetry"]);
    doc["workload"] = sg_json::json!({
        "dims": d as f64, "level": level as f64, "points": grid.len() as f64,
        "function": f.name(), "reps": reps as f64, "eval_points": n_points as f64,
        "interval_ms": interval_ms as f64, "wall_s": wall.as_secs_f64()
    });
    std::fs::write(&out, format!("{}\n", doc.to_string_pretty()))
        .map_err(|e| CliError::io(format!("cannot write flight data to {out}: {e}")))?;
    println!(
        "flight: {} frames x {} columns over {:.1} ms (cadence {interval_ms} ms, \
         {} recorded, {} dropped) -> {out}",
        series.frames.len(),
        series.schema.len(),
        wall.as_secs_f64() * 1e3,
        series.recorded,
        series.dropped,
    );
    Ok(())
}

/// Perf-regression sentry over `results/BENCH_<name>.json` trajectories.
fn cmd_gate(args: &[String]) -> Result<(), CliError> {
    let mut cfg = sg_bench::gate::GateConfig::default();
    if let Some(w) = flag(args, "--window") {
        cfg.window = w.parse().map_err(|e| format!("bad --window: {e}"))?;
    }
    if let Some(m) = flag(args, "--min-runs") {
        cfg.min_runs = m.parse().map_err(|e| format!("bad --min-runs: {e}"))?;
    }
    if let Some(k) = flag(args, "--k") {
        cfg.k = k.parse().map_err(|e| format!("bad --k: {e}"))?;
    }
    if let Some(r) = flag(args, "--rel-floor") {
        cfg.rel_floor = r.parse().map_err(|e| format!("bad --rel-floor: {e}"))?;
    }
    let results = flag(args, "--results").unwrap_or_else(|| "results".into());
    let names = positional(args);
    if names.is_empty() {
        return Err(CliError::usage(
            "missing experiment name(s), e.g. `sgtool gate fig9_hierarchize`",
        ));
    }

    let baseline_override = std::env::var("SG_GATE_BASELINE").is_ok_and(|v| !v.is_empty());
    let mut reports = Vec::new();
    let mut failed = 0usize;
    for name in &names {
        let path = std::path::Path::new(&results).join(format!("BENCH_{name}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError::io(format!("cannot read {}: {e}", path.display())))?;
        let report = sg_bench::gate::analyze_trajectory_text(&text, &cfg)
            .map_err(|e| CliError::corrupt(format!("bad trajectory {}: {e}", path.display())))?;
        println!("gate {name} ({} runs):", report.runs);
        for m in &report.metrics {
            println!("  {}", m.diagnosis());
        }
        if !report.passed() {
            failed += 1;
        }
        reports.push(report);
    }

    if let Some(path) = flag(args, "--json") {
        let mut doc = sg_json::json!({
            "passed": failed == 0,
            "baseline_override": baseline_override,
            "experiments": reports.iter().map(|r| r.to_json()).collect::<Vec<_>>()
        });
        doc["provenance"] = sg_telemetry::provenance(&["telemetry"]);
        std::fs::write(&path, format!("{}\n", doc.to_string_pretty()))
            .map_err(|e| CliError::io(format!("cannot write gate report to {path}: {e}")))?;
    }

    if failed > 0 {
        let total: usize = reports.iter().map(|r| r.regressions().count()).sum();
        if baseline_override {
            println!(
                "SG_GATE_BASELINE set: accepting {total} regression(s) across \
                 {failed} experiment(s) as the new baseline"
            );
            return Ok(());
        }
        return Err(CliError::from(format!(
            "perf gate failed: {total} metric regression(s) across {failed} of {} experiment(s)",
            names.len()
        )));
    }
    println!(
        "perf gate passed: {} experiment(s) within their noise bands",
        names.len()
    );
    Ok(())
}

/// Model-vs-measured divergence: time each level group of a real
/// hierarchize + blocked-evaluate run, predict the same groups' DRAM
/// traffic with the cache simulator, and report how well they line up.
fn cmd_divergence(args: &[String]) -> Result<(), CliError> {
    let parse_flag = |key: &str, default: usize| -> Result<usize, String> {
        flag(args, key)
            .map(|s| s.parse().map_err(|e| format!("bad {key}: {e}")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let d = parse_flag("--dims", 5)?;
    let level = parse_flag("--level", 6)?;
    let n_points = parse_flag("--points", 2048)?.max(1);
    let top = parse_flag("--top", 3)?.max(1);
    let machine = flag(args, "--machine").unwrap_or_else(|| "nehalem".into());
    let fname = flag(args, "--function").unwrap_or_else(|| "gaussian".into());
    let f = TestFunction::ALL
        .iter()
        .find(|f| f.name() == fname)
        .ok_or_else(|| CliError::usage(format!("unknown function {fname:?}")))?;
    let spec =
        GridSpec::try_new(d, level).map_err(|e| CliError::usage(format!("bad grid shape: {e}")))?;
    let new_sim = || -> Result<sg_machine::CacheSim, CliError> {
        Ok(match machine.as_str() {
            "nehalem" => sg_machine::CacheSim::nehalem(),
            "opteron" => sg_machine::CacheSim::opteron_barcelona(),
            "opteron-aggregate" => sg_machine::CacheSim::opteron_barcelona_aggregate(),
            "tiny" => sg_machine::CacheSim::tiny(),
            other => {
                return Err(CliError::usage(format!(
                    "unknown --machine {other:?} (nehalem, opteron, opteron-aggregate, tiny)"
                )))
            }
        })
    };

    // Measured half: a fresh registry window around serial hierarchize +
    // blocked evaluate, so the per-group spans hold exactly this run
    // (serial keeps wall time and attributed time the same thing).
    sg_telemetry::reset();
    let mut grid = CompactGrid::from_fn_parallel(spec, |x| f.eval(x));
    let xs = halton_points(d, n_points);
    hierarchize(&mut grid);
    let _values = evaluate_batch_blocked(&grid, &xs, 64);
    let report = sg_telemetry::snapshot();
    let measured = |phase: &str, n: usize| -> u64 {
        report
            .span(&format!("core.{phase}.group_{n}"))
            .map_or(0, |s| s.total_ns)
    };

    // Predicted half: the same shapes through the cache simulator.
    let mut sim_h = new_sim()?;
    let pred_h =
        sg_machine::profile::trace_hierarchization_groups(StoreKind::Compact, spec, &mut sim_h);
    let mut sim_e = new_sim()?;
    let pred_e = sg_machine::profile::trace_evaluation_groups(
        StoreKind::Compact,
        spec,
        n_points,
        &mut sim_e,
    );

    let mut doc = sg_json::json!({
        "machine": machine.clone(),
        "workload": {
            "dims": d as f64, "level": level as f64, "points": grid.len() as f64,
            "function": f.name(), "eval_points": n_points as f64
        }
    });
    let mut worst: Vec<(String, f64)> = Vec::new();
    for (phase, pred) in [("hierarchize", &pred_h), ("evaluate", &pred_e)] {
        let pairs: Vec<(usize, f64, f64)> = pred
            .groups
            .iter()
            .map(|g| {
                (
                    g.group,
                    g.dram_lines as f64,
                    measured(phase, g.group) as f64,
                )
            })
            .collect();
        // Least-squares through the origin: ns the measurement implies
        // per predicted DRAM line.
        let sxx: f64 = pairs.iter().map(|(_, x, _)| x * x).sum();
        let sxy: f64 = pairs.iter().map(|(_, x, y)| x * y).sum();
        let alpha = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let r = correlation(&pairs);
        println!(
            "\n{phase}: predicted vs measured over {} level groups \
             (machine {machine}, correlation r={r:.4}, fit {alpha:.2} ns/line)",
            pairs.len()
        );
        println!(
            "  {:>5} {:>16} {:>14} {:>14} {:>14}",
            "group", "pred_dram_lines", "measured_ns", "model_ns", "residual_ns"
        );
        let mut groups_json = Vec::new();
        for (n, lines, ns) in &pairs {
            let model = alpha * lines;
            let residual = ns - model;
            println!("  {n:>5} {lines:>16.0} {ns:>14.0} {model:>14.0} {residual:>+14.0}");
            worst.push((format!("{phase} group {n}"), residual));
            groups_json.push(sg_json::json!({
                "group": *n as f64,
                "predicted_dram_lines": *lines,
                "measured_ns": *ns,
                "model_ns": model,
                "residual_ns": residual
            }));
        }
        doc[phase] = sg_json::json!({
            "correlation": r,
            "alpha_ns_per_line": alpha,
            "groups": groups_json
        });
    }

    worst.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    println!("\ntop {top} divergent groups (|measured - model|):");
    let mut worst_json = Vec::new();
    for (name, residual) in worst.iter().take(top) {
        println!("  {name:<24} {residual:>+14.0} ns");
        worst_json.push(sg_json::json!({ "group": name.clone(), "residual_ns": *residual }));
    }
    doc["top_divergent"] = sg_json::Value::from(worst_json);
    doc["provenance"] = sg_telemetry::provenance(&["telemetry"]);
    if let Some(path) = flag(args, "--out") {
        std::fs::write(&path, format!("{}\n", doc.to_string_pretty()))
            .map_err(|e| CliError::io(format!("cannot write divergence report to {path}: {e}")))?;
        println!("report: {path}");
    }
    Ok(())
}

/// Pearson correlation between predicted lines and measured ns over
/// `(group, predicted, measured)` tuples; 0 when either side is flat.
fn correlation(pairs: &[(usize, f64, f64)]) -> f64 {
    let n = pairs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = pairs.iter().map(|(_, x, _)| x).sum::<f64>() / n;
    let my = pairs.iter().map(|(_, _, y)| y).sum::<f64>() / n;
    let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
    for (_, x, y) in pairs {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

fn cmd_render(args: &[String]) -> Result<(), CliError> {
    let out = flag(args, "--out").ok_or("missing --out")?;
    let (values, width, height, (a, b), at, lo, hi) = decompress_slice(args, 1.0)?;
    let range = (hi - lo).max(1e-12);
    let mut ppm = Vec::with_capacity(32 + width * height * 3);
    ppm.extend_from_slice(format!("P6\n{width} {height}\n255\n").as_bytes());
    for &v in &values {
        ppm.extend_from_slice(&colormap((v - lo) / range));
    }
    std::fs::write(&out, &ppm).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "rendered {width}x{height} slice (axes x={a} y={b}, at {at:?}, range [{lo:.3e}, {hi:.3e}]) -> {out}"
    );
    Ok(())
}

fn parse_u64_flag(args: &[String], key: &str) -> Result<Option<u64>, String> {
    let Some(raw) = flag(args, key) else {
        return Ok(None);
    };
    parse_seed(&raw)
        .map(Some)
        .map_err(|e| format!("bad {key}: {e}"))
}

fn parse_seed(raw: &str) -> Result<u64, String> {
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.map_err(|e| format!("{raw:?}: {e}"))
}

fn cmd_fuzz(args: &[String]) -> Result<(), CliError> {
    let mut cfg = sg_fuzz::FuzzConfig::default();
    if let Ok(seed) = std::env::var("SG_PROP_SEED") {
        cfg.seed_base = parse_seed(&seed).map_err(|e| format!("bad SG_PROP_SEED: {e}"))?;
    }
    if let Some(base) = parse_u64_flag(args, "--seed-base")? {
        cfg.seed_base = base;
    }
    if let Some(cases) = parse_u64_flag(args, "--budget-cases")? {
        cfg.budget_cases = Some(cases);
    }
    if let Some(secs) = flag(args, "--budget-secs") {
        let s: f64 = secs
            .parse()
            .map_err(|e| format!("bad --budget-secs: {e}"))?;
        cfg.budget_secs = Some(s);
        if flag(args, "--budget-cases").is_none() {
            cfg.budget_cases = None;
        }
    }
    if let Some(ops) = flag(args, "--op") {
        let parsed: Vec<sg_fuzz::Op> = ops
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| sg_fuzz::Op::parse(s).ok_or_else(|| format!("unknown --op {s:?}")))
            .collect::<Result<_, _>>()?;
        if parsed.is_empty() {
            return Err(CliError::usage(format!("empty --op list {ops:?}")));
        }
        cfg.op_filter = Some(parsed);
    }
    if let Some(shape) = flag(args, "--shape") {
        let (d, n) = shape
            .split_once('x')
            .ok_or_else(|| format!("bad --shape {shape:?}: expected DxN"))?;
        let d: usize = d.parse().map_err(|e| format!("bad --shape dims: {e}"))?;
        let n: usize = n.parse().map_err(|e| format!("bad --shape level: {e}"))?;
        cfg.shape = Some((d, n));
    }
    let inject = match flag(args, "--inject").as_deref() {
        None => sg_fuzz::Injection::None,
        Some("gp2idx-off-by-one") => sg_fuzz::Injection::Gp2idxOffByOne,
        Some(other) => return Err(CliError::usage(format!("unknown --inject {other:?}"))),
    };
    cfg.inject = inject;
    let interleavings: usize = match flag(args, "--sched-interleavings") {
        Some(k) => k
            .parse()
            .map_err(|e| format!("bad --sched-interleavings: {e}"))?,
        None => 200,
    };
    let snapshot_faults: u64 = match flag(args, "--snapshot-faults") {
        Some(n) => n
            .parse()
            .map_err(|e| format!("bad --snapshot-faults: {e}"))?,
        None => 0,
    };
    let combination_faults: u64 = match flag(args, "--combination-faults") {
        Some(n) => n
            .parse()
            .map_err(|e| format!("bad --combination-faults: {e}"))?,
        None => 0,
    };
    let serve_chaos: u64 = match flag(args, "--serve-chaos") {
        Some(n) => n.parse().map_err(|e| format!("bad --serve-chaos: {e}"))?,
        None => 0,
    };

    // Differential pass.
    let report = sg_fuzz::run_fuzz(&cfg);
    println!(
        "fuzz: {} cases in {:.2}s (seed base {:#x}) — {} divergence(s)",
        report.cases,
        report.elapsed_secs,
        report.seed_base,
        report.divergences.len()
    );
    for (name, count) in &report.per_op {
        if *count > 0 {
            println!("  {name:<16} {count}");
        }
    }
    for s in &report.divergences {
        println!("\n{}", s.reproducer);
    }

    // Schedule-exploration pass over the pool protocol.
    let sched_configs = sg_par::vsched::standard_configs();
    let mut sched_total = 0usize;
    let mut sched_steps = 0u64;
    let mut sched_violations: Vec<String> = Vec::new();
    if interleavings > 0 {
        for c in &sched_configs {
            let r = sg_par::vsched::explore(c, interleavings, cfg.seed_base);
            sched_total += r.interleavings;
            sched_steps += r.steps;
            sched_violations.extend(r.violations);
        }
        println!(
            "sched: {} interleavings over {} pool configs ({} virtual steps) — {} violation(s)",
            sched_total,
            sched_configs.len(),
            sched_steps,
            sched_violations.len()
        );
        for v in &sched_violations {
            println!("  {v}");
        }
    }

    // Snapshot fault-injection pass: every injected fault must end in
    // full recovery, enumerated partial recovery, or a typed error.
    let snap_report = if snapshot_faults > 0 {
        let r = sg_fuzz::run_snapshot_faults(cfg.seed_base, snapshot_faults);
        println!(
            "snapshot-faults: {} injected in {:.2}s — {} full, {} partial, {} clean-error, \
             {} violation(s)",
            r.cases,
            r.elapsed_secs,
            r.full_recoveries,
            r.partial_recoveries,
            r.clean_errors,
            r.violations.len()
        );
        for (name, count) in &r.per_class {
            println!("  {name:<24} {count}");
        }
        for v in &r.violations {
            println!("\n{v}");
        }
        Some(r)
    } else {
        None
    };

    // Combination-executor fault-injection pass: the storage classes
    // against the component-set manifest plus task panics and
    // dropped-pre-commit components, under both recovery policies.
    let comb_report = if combination_faults > 0 {
        let r = sg_fuzz::run_combination_faults(cfg.seed_base, combination_faults);
        println!(
            "combination-faults: {} injected in {:.2}s ({} recompute / {} reweight) — {} full, \
             {} partial, {} clean-error, {} violation(s)",
            r.cases,
            r.elapsed_secs,
            r.per_policy.0,
            r.per_policy.1,
            r.full_recoveries,
            r.partial_recoveries,
            r.clean_errors,
            r.violations.len()
        );
        for (name, count) in &r.per_class {
            println!("  {name:<24} {count}");
        }
        for v in &r.violations {
            println!("\n{v}");
        }
        Some(r)
    } else {
        None
    };

    // Serving-layer chaos pass: network faults through a seeded proxy
    // against a live daemon; every fault must recover bitwise via the
    // client's retry machinery or surface as a typed wire error.
    let chaos_report = if serve_chaos > 0 {
        let r = sg_fuzz::run_serve_chaos(cfg.seed_base, serve_chaos);
        println!(
            "serve-chaos: {} injected in {:.2}s — {} recovered ({} retries), {} clean-error, \
             {} violation(s)",
            r.cases,
            r.elapsed_secs,
            r.recoveries,
            r.retries,
            r.clean_errors,
            r.violations.len()
        );
        for (name, count) in &r.per_class {
            println!("  {name:<24} {count}");
        }
        for v in &r.violations {
            println!("\n{v}");
        }
        Some(r)
    } else {
        None
    };

    // JSON summary (CI artifact, same provenance story as profile).
    if let Some(path) = flag(args, "--json") {
        let mut doc = sg_json::json!({
            "cases": report.cases as f64,
            "seed_base": format!("{:#x}", report.seed_base),
            "elapsed_secs": report.elapsed_secs,
            "inject": match inject {
                sg_fuzz::Injection::None => "none",
                sg_fuzz::Injection::Gp2idxOffByOne => "gp2idx-off-by-one",
            },
            "divergences": report
                .divergences
                .iter()
                .map(|s| {
                    let (d, n) = s.case.shape.unwrap_or((s.failure.d, s.failure.n));
                    sg_json::json!({
                        "op": s.case.op.name(),
                        "seed": format!("{:#x}", s.case.seed),
                        "d": d as f64,
                        "n": n as f64,
                        "detail": s.failure.detail.clone(),
                        "reproducer": s.reproducer.clone()
                    })
                })
                .collect::<Vec<_>>(),
            "sched": {
                "configs": sched_configs.len() as f64,
                "interleavings": sched_total as f64,
                "steps": sched_steps as f64,
                "violations": sched_violations.clone()
            }
        });
        let mut per_op = sg_json::json!({});
        for (name, count) in &report.per_op {
            per_op[*name] = sg_json::Value::from(*count as f64);
        }
        doc["per_op"] = per_op;
        if let Some(r) = &snap_report {
            let mut per_class = sg_json::json!({});
            for (name, count) in &r.per_class {
                per_class[*name] = sg_json::Value::from(*count as f64);
            }
            let mut sf = sg_json::json!({
                "cases": r.cases as f64,
                "full_recoveries": r.full_recoveries as f64,
                "partial_recoveries": r.partial_recoveries as f64,
                "clean_errors": r.clean_errors as f64,
                "violations": r.violations.clone(),
                "elapsed_secs": r.elapsed_secs
            });
            sf["per_class"] = per_class;
            doc["snapshot_faults"] = sf;
        }
        if let Some(r) = &comb_report {
            let mut per_class = sg_json::json!({});
            for (name, count) in &r.per_class {
                per_class[*name] = sg_json::Value::from(*count as f64);
            }
            let mut cf = sg_json::json!({
                "cases": r.cases as f64,
                "recompute_cases": r.per_policy.0 as f64,
                "reweight_cases": r.per_policy.1 as f64,
                "full_recoveries": r.full_recoveries as f64,
                "partial_recoveries": r.partial_recoveries as f64,
                "clean_errors": r.clean_errors as f64,
                "violations": r.violations.clone(),
                "elapsed_secs": r.elapsed_secs
            });
            cf["per_class"] = per_class;
            doc["combination_faults"] = cf;
        }
        if let Some(r) = &chaos_report {
            let mut per_class = sg_json::json!({});
            for (name, count) in &r.per_class {
                per_class[*name] = sg_json::Value::from(*count as f64);
            }
            let mut sc = sg_json::json!({
                "cases": r.cases as f64,
                "recoveries": r.recoveries as f64,
                "clean_errors": r.clean_errors as f64,
                "retries": r.retries as f64,
                "violations": r.violations.clone(),
                "elapsed_secs": r.elapsed_secs
            });
            sc["per_class"] = per_class;
            doc["serve_chaos"] = sc;
        }
        doc["provenance"] = sg_telemetry::provenance(&["telemetry"]);
        std::fs::write(&path, format!("{}\n", doc.to_string_pretty()))
            .map_err(|e| format!("cannot write fuzz summary to {path}: {e}"))?;
        println!("summary: {path}");
    }

    match inject {
        sg_fuzz::Injection::None => {
            if !report.clean() {
                return Err(CliError::from(format!(
                    "{} divergence(s) found — see reproducers above",
                    report.divergences.len()
                )));
            }
            if !sched_violations.is_empty() {
                return Err(CliError::from(format!(
                    "{} schedule invariant violation(s)",
                    sched_violations.len()
                )));
            }
            if let Some(r) = &snap_report {
                if !r.clean() {
                    return Err(CliError::from(format!(
                        "{} snapshot fault-injection violation(s) — see reproducers above",
                        r.violations.len()
                    )));
                }
            }
            if let Some(r) = &comb_report {
                if !r.clean() {
                    return Err(CliError::from(format!(
                        "{} combination fault-injection violation(s) — see reproducers above",
                        r.violations.len()
                    )));
                }
            }
            if let Some(r) = &chaos_report {
                if !r.clean() {
                    return Err(CliError::from(format!(
                        "{} serve-chaos violation(s) — see reproducers above",
                        r.violations.len()
                    )));
                }
            }
            Ok(())
        }
        // Self-test: the harness must catch and fully shrink the fault.
        sg_fuzz::Injection::Gp2idxOffByOne => {
            let caught = report
                .divergences
                .iter()
                .any(|s| s.case.shape.is_some() && s.reproducer.lines().count() <= 3);
            if caught {
                println!("injection self-test passed: fault detected and shrunk");
                Ok(())
            } else {
                Err("injected fault was NOT detected — harness self-test failed".into())
            }
        }
    }
}
