//! `sgd` — the sparse-grid evaluation daemon.
//!
//! ```text
//! sgd --listen 127.0.0.1:7071 --load surrogate=model.sgcs
//! sgd --unix /tmp/sgd.sock --load a=a.sgcs --load b=b.sgcs
//! ```
//!
//! Serves a fleet of SGC2 snapshot models over the length-prefixed
//! `sg-serve` protocol: binary f64 frames on the data plane, sg-json on
//! the control plane (`load` / `swap` / `unload` / `repair` / `stats` /
//! `ping` / `shutdown`). Models hot-swap under load without blocking
//! in-flight requests. `--listen 127.0.0.1:0` picks a free port and
//! prints it.
//!
//! SIGTERM, SIGINT, or a control-plane `shutdown` all trigger the same
//! two-phase drain: admissions stop (new work gets a typed
//! `shutting_down`), every already-accepted job finishes and flushes,
//! then the process exits 0. A drain that overruns `SGD_DRAIN_TIMEOUT_MS`
//! is forced and exits 1 so supervisors can tell the difference.

use sg_serve::{Engine, Fleet, ServeConfig, Server};
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const USAGE: &str = "\
sgd — sparse-grid evaluation daemon

USAGE:
    sgd [--listen HOST:PORT] [--unix PATH] [--load NAME=SNAPSHOT]...

OPTIONS:
    --listen HOST:PORT   TCP listener (port 0 picks a free port; the
                         bound address is printed on startup)
    --unix PATH          Unix-socket listener (stale sockets replaced)
    --load NAME=PATH     preload an SGC2 snapshot under NAME (repeatable;
                         more models can be loaded later over the
                         control plane)
    -h, --help           print this help

At least one of --listen / --unix is required.

WIRE FORMAT (one frame = [kind: u8][len: u32 LE][payload]):
    0x01 CtrlReq    sg-json object, e.g. {\"cmd\":\"stats\"}
    0x02 CtrlResp   sg-json object, {\"ok\":true,...}
    0x10 EvalReq    [name_len u16 LE][name][deadline_ms u32 LE]
                    [npoints u32 LE][xs f64 LE]
                    (deadline_ms 0 = none; a request still queued when
                    its deadline passes gets a typed deadline_exceeded)
    0x11 EvalResp   [flags u8][npoints u32 LE][ys f64 LE]
                    (flags bit 0 = served by a degraded model)
    0x1F Error      sg-json {\"error\":\"<code>\",\"message\":\"...\"}

ENVIRONMENT:
    SGD_QUEUE_DEPTH       admission queue depth (default 256)
    SGD_BATCH_MAX_POINTS  max points per coalesced batch and per request
                          (default 16384)
    SGD_BLOCK             evaluator cache block, lane-aligned (default 64)
    SGD_PAR_MIN_POINTS    batches this large run on the sg-par pool
                          (default 2048)
    SGD_MAX_FRAME         max frame payload bytes (default 16777216)
    SGD_MAX_MODELS        fleet capacity (default 64)
    SGD_IO_TIMEOUT_MS     per-connection read/write stall limit, both
                          sides of the wire (default 30000, min 10)
    SGD_IDLE_TIMEOUT_MS   idle connections are reaped after this long
                          between frames (default 300000, min 10)
    SGD_DRAIN_TIMEOUT_MS  graceful-drain budget on SIGTERM/SIGINT/
                          shutdown before the stop is forced
                          (default 10000, min 1)
    SG_KERNEL             evaluation kernel: auto|scalar|avx2|neon
    SG_PAR_THREADS        sg-par pool width

SHUTDOWN:
    SIGTERM / SIGINT / ctrl {\"cmd\":\"shutdown\"} stop admissions
    (typed shutting_down), finish and flush every accepted job, then
    exit 0. A drain that exceeds SGD_DRAIN_TIMEOUT_MS is forced and
    exits 1.

EXIT CODES:
    0 clean shutdown   1 forced drain   2 usage   3 bad snapshot
    4 bind/socket error";

/// Set by the SIGTERM/SIGINT handler; polled by the main wait loop.
static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_sig: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers without a libc crate: `signal(2)` is
/// in every libc the toolchain links anyway. An async-signal-safe
/// handler that only stores an atomic is all we need — the drain itself
/// runs on the main thread.
#[cfg(unix)]
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // SAFETY: `on_signal` is async-signal-safe (one atomic store) and
    // has the `extern "C" fn(i32)` ABI signal(2) expects.
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        // writeln! so `sgd --help | head` sees EPIPE, not a panic.
        let _ = writeln!(std::io::stdout(), "{USAGE}");
        return ExitCode::SUCCESS;
    }
    if let Err(e) = sg_core::kernel::resolve() {
        eprintln!("sgd: {e}");
        return ExitCode::from(2);
    }

    let mut listen: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut loads: Vec<(String, String)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--listen" => match value("--listen") {
                Ok(v) => listen = Some(v),
                Err(e) => return usage_error(&e),
            },
            "--unix" => match value("--unix") {
                Ok(v) => unix = Some(v),
                Err(e) => return usage_error(&e),
            },
            "--load" => match value("--load") {
                Ok(v) => match v.split_once('=') {
                    Some((name, path)) if !name.is_empty() && !path.is_empty() => {
                        loads.push((name.to_string(), path.to_string()));
                    }
                    _ => return usage_error(&format!("--load wants NAME=PATH, got {v:?}")),
                },
                Err(e) => return usage_error(&e),
            },
            other => return usage_error(&format!("unknown flag: {other}")),
        }
    }
    if listen.is_none() && unix.is_none() {
        return usage_error("at least one of --listen / --unix is required");
    }

    let cfg = ServeConfig::from_env();
    let drain_limit = Duration::from_millis(cfg.drain_timeout_ms as u64);
    let fleet = Fleet::new(cfg.max_models);
    for (name, path) in &loads {
        match fleet.load(name, std::path::Path::new(path)) {
            Ok(generation) => {
                eprintln!("sgd: loaded {name:?} from {path} (generation {generation})");
            }
            Err(e) => {
                eprintln!("sgd: loading {name:?} from {path}: {e}");
                return ExitCode::from(3);
            }
        }
    }

    let engine = Engine::new(fleet, cfg);
    let server = match Server::start(
        engine,
        listen.as_deref(),
        unix.as_deref().map(std::path::Path::new),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sgd: binding listeners: {e}");
            return ExitCode::from(4);
        }
    };
    if let Some(addr) = server.tcp_addr() {
        // Parsed by the smoke tests and the load generator: keep stable.
        println!("sgd: listening on tcp://{addr}");
    }
    if let Some(path) = &unix {
        println!("sgd: listening on unix://{path}");
    }
    std::io::stdout().flush().ok();
    install_signal_handlers();

    // Park until a signal arrives or the control plane starts a drain.
    while !SIGNALED.load(Ordering::SeqCst) && !server.is_draining() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("sgd: draining (budget {}ms)", drain_limit.as_millis());
    if server.drain(drain_limit) {
        eprintln!("sgd: drained cleanly");
        ExitCode::SUCCESS
    } else {
        eprintln!("sgd: drain deadline exceeded; stop was forced");
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("sgd: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}
