#![warn(missing_docs)]

//! # sg-apps — examples and integration tests
//!
//! This crate hosts the repository-level `examples/` binaries and the
//! cross-crate `tests/` integration suite (wired in via explicit target
//! paths in `Cargo.toml`). The library itself only re-exports the
//! workspace crates so examples can use one import root.

pub use sg_baselines as baselines;
pub use sg_core as core;
pub use sg_gpu as gpu;
pub use sg_machine as machine;
