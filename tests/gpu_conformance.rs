//! GPU-simulator conformance: the simulated kernels must compute exactly
//! the CPU results on every configuration, and the instrumented counters
//! must satisfy basic accounting identities.

use sg_core::evaluate::evaluate_batch;
use sg_core::functions::{halton_points, TestFunction};
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::{dehierarchize, hierarchize};
use sg_core::level::GridSpec;
use sg_gpu::{evaluate_gpu, hierarchize_gpu, BinmatLocation, GpuDevice, KernelConfig};

fn configs() -> Vec<KernelConfig> {
    let mut out = Vec::new();
    for threads_per_block in [32, 128, 256] {
        for block_shared_l in [true, false] {
            for binmat in [
                BinmatLocation::ConstantCache,
                BinmatLocation::SharedMemory,
                BinmatLocation::OnTheFly,
            ] {
                out.push(KernelConfig {
                    threads_per_block,
                    block_shared_l,
                    binmat,
                });
            }
        }
    }
    out
}

#[test]
fn hierarchization_numerics_are_config_invariant() {
    let f = TestFunction::Gaussian;
    let spec = GridSpec::new(3, 4);
    let base = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
    let mut cpu = base.clone();
    hierarchize(&mut cpu);
    for dev in [GpuDevice::tesla_c1060(), GpuDevice::tesla_c2050()] {
        for cfg in configs() {
            let mut gpu = base.clone();
            hierarchize_gpu(&mut gpu, &dev, &cfg);
            assert_eq!(gpu.values(), cpu.values(), "{} {cfg:?}", dev.name);
        }
    }
}

#[test]
fn evaluation_numerics_are_config_invariant() {
    let f = TestFunction::SineProduct;
    let spec = GridSpec::new(4, 4);
    let mut g = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
    hierarchize(&mut g);
    let xs = halton_points(4, 77);
    let cpu = evaluate_batch(&g, &xs);
    let dev = GpuDevice::tesla_c1060();
    for cfg in configs() {
        let (gpu, _) = evaluate_gpu(&g, &xs, &dev, &cfg);
        assert_eq!(gpu, cpu, "{cfg:?}");
    }
}

#[test]
fn gpu_hierarchization_roundtrips_through_cpu_dehierarchization() {
    let f = TestFunction::Parabola;
    let spec = GridSpec::new(3, 5);
    let original = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
    let mut g = original.clone();
    hierarchize_gpu(&mut g, &GpuDevice::tesla_c1060(), &KernelConfig::default());
    dehierarchize(&mut g);
    assert!(g.max_abs_diff(&original) < 1e-12);
}

#[test]
fn counters_satisfy_accounting_identities() {
    let spec = GridSpec::new(3, 4);
    let mut g = CompactGrid::<f32>::from_fn(spec, |x| TestFunction::Parabola.eval(x) as f32);
    let dev = GpuDevice::tesla_c1060();
    let r = hierarchize_gpu(&mut g, &dev, &KernelConfig::default());
    let c = &r.counters;
    // Bytes are transactions × segment size.
    assert_eq!(c.bytes, c.transactions * dev.segment_bytes);
    // One launch per (dim × level group).
    assert_eq!(c.kernel_launches as usize, 3 * 4);
    // Timing components are consistent.
    assert!(r.time.total >= r.time.launch);
    assert!(r.time.total - r.time.launch >= r.time.issue.max(r.time.bandwidth) - 1e-15);
    // Occupancy is within device limits.
    assert!(r.occupancy.warps_per_sm <= dev.max_warps_per_sm());
}

#[test]
fn pcie_transfers_are_accounted() {
    let dev = GpuDevice::tesla_c1060();
    let spec = GridSpec::new(3, 5);
    let mut g = CompactGrid::<f32>::from_fn(spec, |x| x[0] as f32);
    let r = hierarchize_gpu(&mut g, &dev, &KernelConfig::default());
    // Upload + download of the coefficient array.
    assert_eq!(r.counters.host_bytes, 2 * g.len() as u64 * 4);
    assert!((r.time.transfer - r.counters.host_bytes as f64 / dev.pcie_bandwidth).abs() < 1e-12);
    assert!(r.time.total >= r.time.transfer);

    let xs = halton_points(3, 500);
    let (_, e) = evaluate_gpu(&g, &xs, &dev, &KernelConfig::default());
    // Coords up (f32) + results down.
    assert_eq!(e.counters.host_bytes, (xs.len() * 4 + 500 * 4) as u64);
}

#[test]
fn bigger_grids_cost_more_modelled_time() {
    let dev = GpuDevice::tesla_c1060();
    let time = |levels: usize| {
        let mut g =
            CompactGrid::<f32>::from_fn(GridSpec::new(3, levels), |x| x.iter().sum::<f64>() as f32);
        hierarchize_gpu(&mut g, &dev, &KernelConfig::default())
            .time
            .total
    };
    assert!(time(6) > time(4));
}

#[test]
fn fermi_runs_the_future_work_experiment() {
    // Paper conclusion: "we plan to tune our application for Nvidia GPUs
    // based on the Fermi architecture". The Fermi model must run the same
    // kernels with identical numerics and typically less time.
    let spec = GridSpec::new(5, 5);
    let f = TestFunction::Parabola;
    let base = CompactGrid::<f32>::from_fn(spec, |x| f.eval(x) as f32);
    let cfg = KernelConfig::default();
    let mut a = base.clone();
    let ra = hierarchize_gpu(&mut a, &GpuDevice::tesla_c1060(), &cfg);
    let mut b = base.clone();
    let rb = hierarchize_gpu(&mut b, &GpuDevice::tesla_c2050(), &cfg);
    assert_eq!(a.values(), b.values());
    assert!(
        rb.time.total < ra.time.total * 1.5,
        "Fermi should not be drastically slower: {} vs {}",
        rb.time.total,
        ra.time.total
    );
}
