//! Scalar-vs-SIMD bitwise identity matrix.
//!
//! The SIMD kernels (`sg_core::kernel`) are transcriptions — not
//! reassociations — of the scalar arithmetic, so their results must be
//! **bit-identical** on every batch size straddling a lane boundary, at
//! every dimensionality, and under every thread count. On hosts without
//! a SIMD extension `detect()` degrades to the scalar kernel and the
//! matrix passes trivially (the CI AVX2 leg provides the real coverage).

use sg_core::kernel::{detect, parse_select, with_kernel, KernelError, KernelKind, KernelSelect};
use sg_core::prelude::*;

/// Thread-count changes are process-global; the sweeps that touch them
/// serialize on this so the harness can still run tests concurrently.
static THREADS: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn threads_lock() -> std::sync::MutexGuard<'static, ()> {
    THREADS.lock().unwrap_or_else(|e| e.into_inner())
}

fn surplus_grid(spec: GridSpec) -> CompactGrid<f64> {
    let mut g = CompactGrid::from_fn(spec, |x| {
        x.iter()
            .enumerate()
            .map(|(t, &v)| (t as f64 + 1.0) * v * (1.0 - v))
            .sum::<f64>()
            + x.iter().product::<f64>()
    });
    hierarchize(&mut g);
    g
}

/// Deterministic in-domain query points (dyadic-adjacent, so basis
/// products hit both zero and non-zero lanes).
fn queries(d: usize, count: usize) -> Vec<f64> {
    (0..count * d)
        .map(|k| ((k.wrapping_mul(2654435761) >> 8) % 509 + 1) as f64 / 511.0)
        .collect()
}

fn assert_bitwise(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (q, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: query {q}: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn evaluation_matrix_is_bitwise_identical_across_kernels_and_threads() {
    let _lock = threads_lock();
    let simd = detect();
    let lane = simd.lanes().max(2);
    // Batch sizes straddling the lane boundary plus the spec'd fixed
    // sizes; 65 is never a lane multiple for lanes ∈ {2, 4, 8}.
    let sizes = [0, 1, lane - 1, lane, lane + 1, 7, 64, 65];
    for d in 1..=5usize {
        let levels = if d <= 3 { 5 } else { 3 };
        let spec = GridSpec::new(d, levels);
        let grid = surplus_grid(spec);
        let plan = EvalPlan::new(&spec);
        for &k in &sizes {
            let xs = queries(d, k);
            let reference = evaluate_batch(&grid, &xs);
            for threads in [1usize, 2, 8] {
                sg_par::set_num_threads(threads);
                for block in [lane, 7, k.max(1)] {
                    let scalar = with_kernel(KernelSelect::Force(KernelKind::Scalar), || {
                        (
                            evaluate_batch_blocked_with_plan(&grid, &xs, block, &plan),
                            evaluate_batch_parallel(&grid, &xs, block),
                        )
                    });
                    let vector = with_kernel(KernelSelect::Force(simd), || {
                        (
                            evaluate_batch_blocked_with_plan(&grid, &xs, block, &plan),
                            evaluate_batch_parallel(&grid, &xs, block),
                        )
                    });
                    let what = format!("d={d} k={k} threads={threads} block={block}");
                    assert_bitwise(&scalar.0, &reference, &format!("{what} blocked/scalar"));
                    assert_bitwise(&vector.0, &reference, &format!("{what} blocked/simd"));
                    assert_bitwise(&scalar.1, &reference, &format!("{what} parallel/scalar"));
                    assert_bitwise(&vector.1, &reference, &format!("{what} parallel/simd"));
                }
            }
        }
    }
    sg_par::set_num_threads(1);
}

#[test]
fn hierarchization_matrix_is_bitwise_identical_across_kernels_and_threads() {
    let _lock = threads_lock();
    let simd = detect();
    for d in 1..=5usize {
        let levels = if d <= 3 { 5 } else { 3 };
        let spec = GridSpec::new(d, levels);
        let nodal = CompactGrid::from_fn(spec, |x| {
            x.iter().map(|&v| (4.0 * v).sin() + v * v).sum::<f64>()
        });
        // Reference: sequential sweeps under the forced scalar kernel.
        let reference = with_kernel(KernelSelect::Force(KernelKind::Scalar), || {
            let mut g = nodal.clone();
            hierarchize(&mut g);
            g
        });
        for threads in [1usize, 2, 8] {
            sg_par::set_num_threads(threads);
            for sel in [
                KernelSelect::Force(KernelKind::Scalar),
                KernelSelect::Force(simd),
            ] {
                let (seq, par, back) = with_kernel(sel, || {
                    let mut seq = nodal.clone();
                    hierarchize(&mut seq);
                    let mut par = nodal.clone();
                    hierarchize_parallel(&mut par);
                    let mut back = seq.clone();
                    dehierarchize_parallel(&mut back);
                    (seq, par, back)
                });
                let what = format!("d={d} threads={threads} {sel:?}");
                assert_bitwise(seq.values(), reference.values(), &format!("{what} seq"));
                assert_bitwise(par.values(), reference.values(), &format!("{what} par"));
                // Dehierarchization under the same kernel must bitwise
                // reproduce the forced-scalar sequential inverse.
                let expect = with_kernel(KernelSelect::Force(KernelKind::Scalar), || {
                    let mut g = reference.clone();
                    dehierarchize(&mut g);
                    g
                });
                assert_bitwise(back.values(), expect.values(), &format!("{what} dehier"));
            }
        }
    }
    sg_par::set_num_threads(1);
}

#[test]
fn empty_batch_and_single_subspace_edges() {
    let simd = detect();
    // Empty batch: every kernel and entry point returns an empty vector.
    let grid = surplus_grid(GridSpec::new(3, 4));
    for sel in [
        KernelSelect::Auto,
        KernelSelect::Force(KernelKind::Scalar),
        KernelSelect::Force(simd),
    ] {
        let (blocked, par) = with_kernel(sel, || {
            (
                evaluate_batch_blocked(&grid, &[], 8),
                evaluate_batch_parallel(&grid, &[], 8),
            )
        });
        assert!(blocked.is_empty() && par.is_empty(), "{sel:?}");
    }
    // Single-subspace grid (level 1: the root subspace alone) — the
    // hierarchization sweeps have nothing to do (l_t = 0 everywhere is
    // skipped; d=1 level-1 has one point with no ancestors), and
    // evaluation reduces to the root basis product.
    let spec = GridSpec::new(3, 1);
    let nodal = CompactGrid::from_fn(spec, |x| x.iter().sum::<f64>());
    let xs = queries(3, 9);
    let reference = with_kernel(KernelSelect::Force(KernelKind::Scalar), || {
        let mut g = nodal.clone();
        hierarchize(&mut g);
        evaluate_batch(&g, &xs)
    });
    let vector = with_kernel(KernelSelect::Force(simd), || {
        let mut g = nodal.clone();
        hierarchize(&mut g);
        evaluate_batch_blocked(&g, &xs, 4)
    });
    assert_bitwise(&vector, &reference, "single-subspace");
}

#[test]
fn selection_vocabulary_and_typed_errors() {
    assert_eq!(parse_select("auto"), Ok(KernelSelect::Auto));
    assert_eq!(parse_select(""), Ok(KernelSelect::Auto));
    assert_eq!(
        parse_select(" Scalar "),
        Ok(KernelSelect::Force(KernelKind::Scalar))
    );
    assert_eq!(
        parse_select("AVX2"),
        Ok(KernelSelect::Force(KernelKind::Avx2))
    );
    assert_eq!(
        parse_select("neon"),
        Ok(KernelSelect::Force(KernelKind::Neon))
    );
    // Unknown values are a typed error whose message names the variable
    // and the accepted vocabulary — not a panic, not a silent fallback.
    let err = parse_select("bogus").unwrap_err();
    assert_eq!(err, KernelError::Unknown("bogus".into()));
    let msg = err.to_string();
    assert!(msg.contains("SG_KERNEL") && msg.contains("bogus"), "{msg}");

    // Forcing an ISA the host lacks resolves to a typed Unavailable
    // error, and the hot-path dispatch degrades to scalar instead of
    // crashing.
    let absent = if cfg!(target_arch = "x86_64") {
        KernelKind::Neon
    } else {
        KernelKind::Avx2
    };
    with_kernel(KernelSelect::Force(absent), || {
        assert_eq!(
            sg_core::kernel::resolve(),
            Err(KernelError::Unavailable(absent))
        );
        assert_eq!(sg_core::kernel::active(), KernelKind::Scalar);
    });
}
