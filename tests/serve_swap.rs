//! Serving correctness: bitwise identity with direct evaluation, and
//! hot swap under sustained load with zero dropped or torn responses.

use sg_core::evaluate::evaluate_batch;
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::hierarchize;
use sg_core::level::GridSpec;
use sg_serve::{Client, Engine, Fleet, ServeConfig, Server};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn make_grid(scale: f64) -> CompactGrid<f64> {
    let mut g = CompactGrid::from_fn(GridSpec::new(3, 5), |x| {
        scale * ((5.0 * x[0]).sin() + x[1] * x[2] + 0.25 * x[2])
    });
    hierarchize(&mut g);
    g
}

fn snapshot(tag: &str, grid: &CompactGrid<f64>) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("sg-serve-swap-{}-{tag}.sgcs", std::process::id()));
    sg_io::write_snapshot_file(grid, &path, "swap-test").unwrap();
    path
}

fn query_batch(seed: u64, npoints: usize) -> Vec<f64> {
    // Deterministic quasi-random coordinates in [0, 1).
    (0..npoints * 3)
        .map(|i| (((seed + i as u64) as f64) * 0.377_214_903).fract())
        .collect()
}

/// The daemon's answers must be bit-for-bit the library's answers, for
/// batch sizes crossing lane, block, and coalescing boundaries.
#[test]
fn served_answers_are_bitwise_identical_to_direct_evaluation() {
    let grid = make_grid(1.0);
    let path = snapshot("bitwise", &grid);
    let fleet = Fleet::new(2);
    fleet.load("m", &path).unwrap();
    let engine = Engine::new(fleet, ServeConfig::default());
    let server = Server::start(engine, Some("127.0.0.1:0"), None).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    let mut client = Client::connect_tcp(&addr).unwrap();
    let mut out = Vec::new();
    for npoints in [1usize, 2, 3, 7, 64, 65, 257, 1024] {
        let xs = query_batch(npoints as u64, npoints);
        let want = evaluate_batch(&grid, &xs);
        client.eval_into("m", 3, &xs, &mut out).unwrap();
        assert_eq!(out.len(), want.len());
        for (k, (got, want)) in out.iter().zip(want.iter()).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "point {k} of {npoints} diverged from direct evaluation"
            );
        }
    }
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Hammer the server from several connections while the model is
/// hot-swapped A→B→A→…. Every single response must be bitwise equal to
/// the full-batch answer of *some* generation — no torn model, no
/// failed request, no blocked reader.
#[test]
fn hot_swap_under_load_never_tears_or_drops_responses() {
    let grid_a = make_grid(1.0);
    let grid_b = make_grid(-2.0);
    let path_a = snapshot("load-a", &grid_a);
    let path_b = snapshot("load-b", &grid_b);

    let fleet = Fleet::new(2);
    fleet.load("m", &path_a).unwrap();
    let engine = Engine::new(Arc::clone(&fleet), ServeConfig::default());
    let server = Server::start(engine, Some("127.0.0.1:0"), None).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();

    let npoints = 33;
    let xs = query_batch(7, npoints);
    let want_a = evaluate_batch(&grid_a, &xs);
    let want_b = evaluate_batch(&grid_b, &xs);

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for _ in 0..4 {
        let addr = addr.clone();
        let xs = xs.clone();
        let (want_a, want_b) = (want_a.clone(), want_b.clone());
        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed);
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).unwrap();
            let mut out = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                client
                    .eval_into("m", 3, &xs, &mut out)
                    .expect("request failed during hot swap");
                let matches_a = out
                    .iter()
                    .zip(&want_a)
                    .all(|(g, w)| g.to_bits() == w.to_bits());
                let matches_b = out
                    .iter()
                    .zip(&want_b)
                    .all(|(g, w)| g.to_bits() == w.to_bits());
                assert!(
                    out.len() == npoints && (matches_a || matches_b),
                    "torn response: matches neither generation"
                );
                completed.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Swap back and forth under load over the control plane.
    let mut ctrl = Client::connect_tcp(&addr).unwrap();
    for i in 0..20 {
        let path = if i % 2 == 0 { &path_b } else { &path_a };
        ctrl.load("m", path).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // Let the workers run a little after the last swap, then stop.
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker saw a failed or torn response");
    }
    assert!(
        completed.load(Ordering::Relaxed) > 40,
        "load generator barely ran; swap test proved nothing"
    );
    // All retired generations must be reclaimable once readers idle.
    fleet.collect();
    assert_eq!(fleet.garbage_len(), 0, "retired models leaked");
    server.shutdown();
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}

/// Unloading a model under load yields typed unknown_model errors, never
/// a hang or a torn read; reloading restores service.
#[test]
fn unload_and_reload_under_traffic_is_typed() {
    let grid = make_grid(1.0);
    let path = snapshot("unload", &grid);
    let fleet = Fleet::new(2);
    fleet.load("m", &path).unwrap();
    let engine = Engine::new(fleet, ServeConfig::default());
    let server = Server::start(engine, Some("127.0.0.1:0"), None).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    let mut client = Client::connect_tcp(&addr).unwrap();
    let xs = query_batch(3, 5);
    client.eval("m", 3, &xs).unwrap();
    client.unload("m").unwrap();
    match client.eval("m", 3, &xs) {
        Err(sg_serve::ServeError::UnknownModel(_)) => {}
        other => panic!("expected unknown_model, got {other:?}"),
    }
    client.load("m", &path).unwrap();
    client.eval("m", 3, &xs).unwrap();
    server.shutdown();
    std::fs::remove_file(&path).ok();
}
