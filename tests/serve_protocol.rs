//! Wire-protocol edge cases against a live `sgd` server.
//!
//! Every malformed input must produce a *typed* error frame (or a clean
//! close) — never a panic, a hang, or a poisoned server. After each
//! abuse the server must keep serving fresh connections.

use sg_core::grid::CompactGrid;
use sg_core::hierarchize::hierarchize;
use sg_core::level::GridSpec;
use sg_serve::protocol::{encode_eval_req, parse_error, read_frame, write_frame};
use sg_serve::{Client, Engine, Fleet, FrameKind, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn temp_snapshot(tag: &str) -> std::path::PathBuf {
    let mut g = CompactGrid::from_fn(GridSpec::new(2, 4), |x| x[0] + 3.0 * x[1]);
    hierarchize(&mut g);
    let path = std::env::temp_dir().join(format!(
        "sg-serve-protocol-{}-{tag}.sgcs",
        std::process::id()
    ));
    sg_io::write_snapshot_file(&g, &path, "protocol-test").unwrap();
    path
}

/// In-process server with one 2-d model named "m" on a free TCP port.
fn start_server(tag: &str) -> (Arc<Server>, String, std::path::PathBuf) {
    let path = temp_snapshot(tag);
    let fleet = Fleet::new(4);
    fleet.load("m", &path).unwrap();
    let engine = Engine::new(fleet, ServeConfig::default());
    let server = Server::start(engine, Some("127.0.0.1:0"), None).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    (server, addr, path)
}

/// Read one frame as a raw client; panics on transport errors.
fn read_reply(stream: &mut TcpStream) -> Option<(FrameKind, Vec<u8>)> {
    let mut buf = Vec::new();
    match read_frame(stream, &mut buf, 1 << 20) {
        Ok(Some(kind)) => Some((kind, buf)),
        Ok(None) => None,
        Err(e) => panic!("client-side framing error: {e}"),
    }
}

fn expect_error_code(stream: &mut TcpStream, want: &str) {
    let (kind, payload) = read_reply(stream).expect("server closed without a typed reply");
    assert_eq!(kind, FrameKind::Error, "expected an error frame");
    let (code, msg) = parse_error(&payload);
    assert_eq!(code, want, "unexpected error code (message: {msg})");
}

/// The server still answers a well-formed request on a new connection.
fn assert_server_healthy(addr: &str) {
    let mut client = Client::connect_tcp(addr).unwrap();
    let ys = client.eval("m", 2, &[0.25, 0.5]).unwrap();
    assert_eq!(ys.len(), 1);
}

#[test]
fn oversized_length_prefix_is_a_typed_fatal_error() {
    let (server, addr, path) = start_server("oversized");
    let mut s = TcpStream::connect(&addr).unwrap();
    let mut header = vec![0x10u8];
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    s.write_all(&header).unwrap();
    expect_error_code(&mut s, "bad_frame");
    // Fatal: the server closes after replying.
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    assert_server_healthy(&addr);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn zero_length_prefix_is_a_typed_fatal_error() {
    let (server, addr, path) = start_server("zerolen");
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(&[0x10, 0, 0, 0, 0]).unwrap();
    expect_error_code(&mut s, "bad_frame");
    assert_server_healthy(&addr);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_frame_kind_is_a_typed_fatal_error() {
    let (server, addr, path) = start_server("badkind");
    let mut s = TcpStream::connect(&addr).unwrap();
    s.write_all(&[0x7F, 1, 0, 0, 0, 42]).unwrap();
    expect_error_code(&mut s, "bad_frame");
    assert_server_healthy(&addr);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_payload_then_disconnect_leaves_the_server_healthy() {
    let (server, addr, path) = start_server("truncated");
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        // Promise 100 payload bytes, deliver 10, hang up.
        let mut frame = vec![0x10u8];
        frame.extend_from_slice(&100u32.to_le_bytes());
        frame.extend_from_slice(&[0u8; 10]);
        s.write_all(&frame).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        // The server replies with a typed bad_frame (best effort) and
        // closes; either way no panic and no hang.
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).ok();
    }
    assert_server_healthy(&addr);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn mid_header_disconnect_leaves_the_server_healthy() {
    let (server, addr, path) = start_server("midheader");
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(&[0x10, 9]).unwrap(); // 2 of 5 header bytes
    } // dropped: RST/FIN mid-header
    assert_server_healthy(&addr);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_model_is_typed_and_the_connection_survives() {
    let (server, addr, path) = start_server("unknownmodel");
    let mut s = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    let mut wire = Vec::new();
    encode_eval_req(&mut payload, "nope", 0, 1, &[0.5, 0.5]);
    write_frame(&mut s, FrameKind::EvalReq, &payload, &mut wire).unwrap();
    expect_error_code(&mut s, "unknown_model");
    // Non-fatal: the same connection serves the next request.
    encode_eval_req(&mut payload, "m", 0, 1, &[0.5, 0.5]);
    write_frame(&mut s, FrameKind::EvalReq, &payload, &mut wire).unwrap();
    let (kind, _) = read_reply(&mut s).unwrap();
    assert_eq!(kind, FrameKind::EvalResp);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_requests_are_typed_and_nonfatal() {
    let (server, addr, path) = start_server("badrequest");
    let mut client = Client::connect_tcp(&addr).unwrap();
    // Out-of-domain coordinate.
    match client.eval("m", 2, &[0.5, 1.5]) {
        Err(sg_serve::ServeError::BadRequest(_)) => {}
        other => panic!("expected bad_request, got {other:?}"),
    }
    // The connection keeps serving after the typed failure.
    assert_eq!(client.eval("m", 2, &[0.5, 0.5]).unwrap().len(), 1);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn control_plane_roundtrip_and_stats() {
    let (server, addr, path) = start_server("ctrl");
    let mut client = Client::connect_tcp(&addr).unwrap();
    client.ping().unwrap();
    let generation = client.load("m2", &path).unwrap();
    assert!(generation >= 1);
    let stats = client.stats().unwrap();
    let models = stats.get("models").and_then(|v| v.as_array()).unwrap();
    assert_eq!(models.len(), 2, "stats must list both models");
    client.unload("m2").unwrap();
    match client.unload("m2") {
        Err(sg_serve::ServeError::UnknownModel(_)) => {}
        other => panic!("expected unknown_model, got {other:?}"),
    }
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// End-to-end through the real binary: spawn `sgd`, parse the printed
/// port, serve traffic, stop it over the control plane.
#[test]
fn sgd_binary_serves_and_shuts_down_cleanly() {
    use std::io::BufRead;
    let path = temp_snapshot("binary");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_sgd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--load",
            &format!("m={}", path.display()),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawning sgd");
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("sgd printed nothing")
        .expect("reading sgd stdout");
    let addr = banner
        .strip_prefix("sgd: listening on tcp://")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    let mut client = Client::connect_tcp(&addr).unwrap();
    let ys = client.eval("m", 2, &[0.25, 0.75, 0.5, 0.5]).unwrap();
    assert_eq!(ys.len(), 2);
    client.shutdown_server().unwrap();
    let status = child.wait().expect("waiting for sgd");
    assert!(status.success(), "sgd exited with {status:?}");
    std::fs::remove_file(&path).ok();
}
