//! Cross-crate equivalence matrix: every storage structure × both
//! algorithm families (iterative compact, recursive classic) must produce
//! identical hierarchical surpluses and identical interpolants.

use sg_baselines::{
    evaluate_recursive, hierarchize_recursive, EnhancedHashGrid, EnhancedMapGrid, PrefixTreeGrid,
    SparseGridStore, StdMapGrid,
};
use sg_core::evaluate::{
    evaluate, evaluate_batch, evaluate_batch_blocked, evaluate_batch_parallel,
};
use sg_core::functions::{halton_points, TestFunction};
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::{hierarchize, hierarchize_alg6_literal, hierarchize_parallel};
use sg_core::level::GridSpec;

const SPECS: [(usize, usize); 4] = [(1, 7), (2, 6), (3, 5), (5, 4)];

fn reference(spec: GridSpec, f: &TestFunction) -> CompactGrid<f64> {
    let mut g = CompactGrid::from_fn(spec, |x| f.eval(x));
    hierarchize(&mut g);
    g
}

#[test]
fn every_store_yields_identical_surpluses() {
    let f = TestFunction::SineProduct;
    for (d, levels) in SPECS {
        let spec = GridSpec::new(d, levels);
        let r = reference(spec, &f);

        macro_rules! check {
            ($store:expr, $name:literal) => {{
                let mut s = $store;
                s.fill_from(|x| f.eval(x));
                hierarchize_recursive(&mut s);
                let diff = s.to_compact().max_abs_diff(&r);
                assert!(diff < 1e-12, "{} d={d} levels={levels}: {diff}", $name);
            }};
        }
        check!(StdMapGrid::<f64>::new(spec), "std-map");
        check!(EnhancedMapGrid::<f64>::new(spec), "enh-map");
        check!(EnhancedHashGrid::<f64>::new(spec), "enh-hash");
        check!(PrefixTreeGrid::<f64>::new(spec), "prefix-tree");
    }
}

#[test]
fn all_hierarchization_variants_agree_bitwise() {
    let f = TestFunction::Gaussian;
    for (d, levels) in SPECS {
        let spec = GridSpec::new(d, levels);
        let base = CompactGrid::from_fn(spec, |x| f.eval(x));
        let mut a = base.clone();
        let mut b = base.clone();
        let mut c = base.clone();
        hierarchize(&mut a);
        hierarchize_alg6_literal(&mut b);
        hierarchize_parallel(&mut c);
        assert_eq!(a.values(), b.values(), "literal d={d}");
        assert_eq!(a.values(), c.values(), "parallel d={d}");
    }
}

#[test]
fn all_evaluation_variants_agree() {
    let f = TestFunction::Parabola;
    for (d, levels) in SPECS {
        let spec = GridSpec::new(d, levels);
        let g = reference(spec, &f);
        let xs = halton_points(d, 64);
        let single: Vec<f64> = xs.chunks_exact(d).map(|x| evaluate(&g, x)).collect();
        assert_eq!(single, evaluate_batch(&g, &xs), "batch d={d}");
        assert_eq!(single, evaluate_batch_blocked(&g, &xs, 7), "blocked d={d}");
        assert_eq!(
            single,
            evaluate_batch_parallel(&g, &xs, 16),
            "parallel d={d}"
        );
        for (x, &expect) in xs.chunks_exact(d).zip(&single) {
            let rec = evaluate_recursive(&g, x);
            assert!((rec - expect).abs() < 1e-12, "recursive d={d} x={x:?}");
        }
    }
}

#[test]
fn recursive_evaluation_agrees_on_every_store() {
    let f = TestFunction::SineProduct;
    let spec = GridSpec::new(3, 5);
    let r = reference(spec, &f);
    let xs = halton_points(3, 32);

    let mut tree = PrefixTreeGrid::<f64>::new(spec);
    tree.fill_from(|x| f.eval(x));
    hierarchize_recursive(&mut tree);
    let mut map = StdMapGrid::<f64>::new(spec);
    map.fill_from(|x| f.eval(x));
    hierarchize_recursive(&mut map);

    for x in xs.chunks_exact(3) {
        let expect = evaluate(&r, x);
        assert!((evaluate_recursive(&tree, x) - expect).abs() < 1e-12);
        assert!((evaluate_recursive(&map, x) - expect).abs() < 1e-12);
    }
}

/// The full paper matrix: d ∈ {1, 2, 3, 5} × levels ∈ {1..6}. The
/// hierarchize → evaluate round trip reproduces the nodal data at every
/// grid point, and all four baseline stores produce the same interpolant
/// as the compact grid, everywhere within 1e-12.
#[test]
fn round_trip_matrix_across_all_stores() {
    use sg_core::iter::for_each_point;
    use sg_core::level::coordinate;

    let f = TestFunction::Gaussian;
    for d in [1usize, 2, 3, 5] {
        for levels in 1..=6 {
            let spec = GridSpec::new(d, levels);
            let r = reference(spec, &f);

            // Round trip 1: evaluating the hierarchized grid at every
            // grid point gives back the value that was compressed.
            let mut x = vec![0.0; d];
            for_each_point(&spec, |_idx, l, i| {
                for t in 0..d {
                    x[t] = coordinate(l[t], i[t]);
                }
                let got = evaluate(&r, &x);
                let expect = f.eval(&x);
                assert!(
                    (got - expect).abs() < 1e-12,
                    "d={d} levels={levels} x={x:?}: {got} vs {expect}"
                );
            });

            // Round trip 2: each baseline store, hierarchized by the
            // recursive classic algorithm, interpolates identically.
            let xs = halton_points(d, 16);
            macro_rules! check {
                ($store:expr, $name:literal) => {{
                    let mut s = $store;
                    s.fill_from(|x| f.eval(x));
                    hierarchize_recursive(&mut s);
                    for x in xs.chunks_exact(d) {
                        let a = evaluate_recursive(&s, x);
                        let b = evaluate(&r, x);
                        assert!(
                            (a - b).abs() < 1e-12,
                            "{} d={d} levels={levels} x={x:?}: {a} vs {b}",
                            $name
                        );
                    }
                }};
            }
            check!(StdMapGrid::<f64>::new(spec), "std-map");
            check!(EnhancedMapGrid::<f64>::new(spec), "enh-map");
            check!(EnhancedHashGrid::<f64>::new(spec), "enh-hash");
            check!(PrefixTreeGrid::<f64>::new(spec), "prefix-tree");
        }
    }
}

/// The boundary extension (§4.4) joins the matrix: a function that is
/// affine in each coordinate is represented *exactly* by the boundary
/// grid (all interior surpluses vanish), so the hierarchize → evaluate
/// round trip must be 1e-12-exact at arbitrary points, not just lattice
/// points.
#[test]
fn boundary_grid_round_trip_is_exact_for_multilinear_data() {
    use sg_core::boundary::BoundaryGrid;

    for d in [1usize, 2, 3] {
        for levels in 1..=4 {
            let f = |x: &[f64]| {
                x.iter()
                    .enumerate()
                    .map(|(t, &v)| 1.0 + (t as f64 + 1.0) * v)
                    .product::<f64>()
            };
            let mut g: BoundaryGrid<f64> = BoundaryGrid::from_fn(d, levels, f);
            g.hierarchize();
            let corner = vec![1.0; d];
            assert!((g.evaluate(&corner) - f(&corner)).abs() < 1e-12);
            for x in halton_points(d, 24).chunks_exact(d) {
                let (a, b) = (g.evaluate(x), f(x));
                assert!(
                    (a - b).abs() < 1e-12,
                    "d={d} levels={levels} x={x:?}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn f32_and_f64_grids_agree_to_single_precision() {
    let f = TestFunction::Parabola;
    let spec = GridSpec::new(4, 5);
    let mut g64 = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
    let mut g32 = CompactGrid::<f32>::from_fn(spec, |x| f.eval(x) as f32);
    hierarchize(&mut g64);
    hierarchize(&mut g32);
    for x in halton_points(4, 50).chunks_exact(4) {
        let a = evaluate(&g64, x);
        let b = evaluate(&g32, x) as f64;
        assert!((a - b).abs() < 1e-5, "x={x:?}: {a} vs {b}");
    }
}
