//! Cross-validation tier: the combination technique vs the direct
//! sparse grid, exhaustively over d ∈ 1..4 × refinement level 1..5 ×
//! both compute kernels.
//!
//! The combination identity is *exact for interpolation*, so the
//! combined interpolant must agree with the direct `sg-core`
//! interpolant to 1e-9 (relative to the surplus scale) at every probe —
//! and with the recursive `sg-baselines` interpolant to the same
//! tolerance, while the direct interpolant itself must be **bitwise**
//! identical under forced-scalar, forced-SIMD, and auto kernel
//! dispatch. Together the three implementations pin each other down:
//! a rank/offset bug in the compact structure, a coefficient bug in the
//! combination, or a lane-order bug in a kernel each breaks a different
//! edge of the triangle.

use sg_baselines::{evaluate_recursive, hierarchize_recursive, SparseGridStore, StdMapGrid};
use sg_combination::{CombinationExecutor, CombinationGrid, RunOutcome};
use sg_core::evaluate::evaluate;
use sg_core::functions::{halton_points, TestFunction};
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::hierarchize;
use sg_core::kernel::{detect, with_kernel, KernelKind, KernelSelect};
use sg_core::level::GridSpec;

const TOL: f64 = 1e-9;

/// Every (d, level) cell of the required matrix.
fn matrix() -> Vec<GridSpec> {
    let mut specs = Vec::new();
    for d in 1..=4 {
        for levels in 1..=5 {
            specs.push(GridSpec::new(d, levels));
        }
    }
    specs
}

/// Probe points for a shape: low-discrepancy interior points.
fn probes(d: usize) -> Vec<f64> {
    halton_points(d, 32)
}

#[test]
fn combination_equals_direct_interpolant_over_the_full_matrix() {
    for f in TestFunction::ALL {
        for spec in matrix() {
            let d = spec.dim();
            let comb = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));
            let mut direct = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
            hierarchize(&mut direct);
            let scale = direct.values().iter().fold(1.0f64, |m, &v| m.max(v.abs()));
            for x in probes(d).chunks_exact(d) {
                let a = comb.evaluate(x);
                let b = evaluate(&direct, x);
                assert!(
                    (a - b).abs() <= TOL * scale,
                    "{} d={d} levels={} x={x:?}: combination={a} direct={b}",
                    f.name(),
                    spec.levels()
                );
            }
        }
    }
}

#[test]
fn combination_matches_the_recursive_baseline_within_tolerance() {
    // Tolerance edge of the bitwise-vs-tolerance matrix: the recursive
    // baseline computes the same interpolant by structurally different
    // code (hash-map store, Alg. 1/2 recursion), so agreement is to
    // tolerance, never bitwise.
    let f = TestFunction::SineProduct;
    for spec in matrix() {
        let d = spec.dim();
        let comb = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));
        let mut store = StdMapGrid::<f64>::new(spec);
        store.fill_from(|x| f.eval(x));
        hierarchize_recursive(&mut store);
        let mut direct = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
        hierarchize(&mut direct);
        let scale = direct.values().iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        for x in probes(d).chunks_exact(d) {
            let a = comb.evaluate(x);
            let r = evaluate_recursive(&store, x);
            assert!(
                (a - r).abs() <= TOL * scale,
                "d={d} levels={} x={x:?}: combination={a} recursive={r}",
                spec.levels()
            );
        }
    }
}

#[test]
fn both_kernels_agree_bitwise_and_validate_the_combination() {
    // Bitwise edge of the matrix: forcing the kernel must not move a
    // single bit of the direct interpolant, and the combination must
    // cross-validate against every kernel's output.
    let f = TestFunction::Gaussian;
    let kinds = [KernelKind::Scalar, detect()];
    for spec in matrix() {
        let d = spec.dim();
        let comb = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));
        let mut direct = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
        hierarchize(&mut direct);
        let scale = direct.values().iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        let xs = probes(d);
        let auto: Vec<f64> = xs.chunks_exact(d).map(|x| evaluate(&direct, x)).collect();
        for kind in kinds {
            let forced: Vec<f64> = with_kernel(KernelSelect::Force(kind), || {
                xs.chunks_exact(d).map(|x| evaluate(&direct, x)).collect()
            });
            for (q, x) in xs.chunks_exact(d).enumerate() {
                assert_eq!(
                    auto[q].to_bits(),
                    forced[q].to_bits(),
                    "d={d} levels={} kernel={kind:?} x={x:?}",
                    spec.levels()
                );
                let a = comb.evaluate(x);
                assert!(
                    (a - forced[q]).abs() <= TOL * scale,
                    "d={d} levels={} kernel={kind:?} x={x:?}: combination={a} direct={}",
                    spec.levels(),
                    forced[q]
                );
            }
        }
    }
}

#[test]
fn executor_pipeline_cross_validates_over_the_matrix() {
    // The executor's checkpoint→recover pipeline must preserve the
    // cross-validation: a clean run recovered from its own manifest is
    // the same interpolant.
    let f = TestFunction::Parabola;
    for spec in matrix() {
        let d = spec.dim();
        let run = CombinationExecutor::new(spec).run(|x| f.eval(x)).unwrap();
        assert_eq!(run.outcome, RunOutcome::Clean);
        let mut direct = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
        hierarchize(&mut direct);
        let scale = direct.values().iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        for x in probes(d).chunks_exact(d) {
            let a = run.grid.evaluate(x);
            let b = evaluate(&direct, x);
            assert!(
                (a - b).abs() <= TOL * scale,
                "d={d} levels={} x={x:?}: executor={a} direct={b}",
                spec.levels()
            );
        }
    }
}
