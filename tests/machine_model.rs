//! Integration tests for the performance substrates: the cache simulator,
//! the multicore scaling model, and the GPU simulator must jointly
//! reproduce the qualitative claims of the paper's evaluation.

use sg_baselines::StoreKind;
use sg_core::level::GridSpec;
use sg_gpu::{evaluate_gpu, hierarchize_gpu, GpuDevice, KernelConfig};
use sg_machine::{trace_evaluation, trace_hierarchization, CacheSim, MachineModel, SeqCpuModel};

#[test]
fn compact_hierarchization_traffic_is_near_minimal() {
    // Paper §4.3: "we therefore expect to have at most one miss per
    // coefficient access" — over the whole sweep the compact structure's
    // traffic must stay within a small factor of the grid size.
    let spec = GridSpec::new(5, 8);
    let mut sim = CacheSim::nehalem();
    let p = trace_hierarchization(StoreKind::Compact, spec, &mut sim);
    let lines = p.dram_bytes / 64;
    assert!(
        lines < p.accesses,
        "compact hierarchization: {lines} lines for {} accesses",
        p.accesses
    );
}

#[test]
fn map_structures_move_an_order_of_magnitude_more_data() {
    let spec = GridSpec::new(5, 8);
    let traffic = |kind| {
        let mut sim = CacheSim::opteron_barcelona();
        trace_hierarchization(kind, spec, &mut sim).dram_bytes
    };
    let compact = traffic(StoreKind::Compact);
    let map = traffic(StoreKind::EnhancedMap);
    assert!(map > 10 * compact, "map traffic {map} vs compact {compact}");
}

#[test]
fn fig11_shape_compact_scales_baselines_saturate() {
    // The Fig. 11a mechanism end to end, with modelled sequential times
    // so the test is machine-independent.
    let spec = GridSpec::new(8, 7);
    let machine = MachineModel::opteron_8356_32core();
    let cpu = SeqCpuModel::nehalem_core();

    let profile = |kind| {
        let mut sim = CacheSim::opteron_barcelona();
        trace_hierarchization(kind, spec, &mut sim)
    };
    let compact = profile(StoreKind::Compact);
    let map = profile(StoreKind::EnhancedMap);

    // Sequential model times: instructions ∝ accesses (≈ 3d + stencil per
    // access for the compact sweep, tree descent for the map), stalls
    // from traffic.
    let t_compact = cpu.time(compact.accesses * 60, compact.dram_bytes / 64);
    let t_map = cpu.time(map.accesses * 150, map.dram_bytes / 64);

    let s_compact = compact.workload(t_compact).speedup(&machine, 32);
    let s_map = map.workload_tasked(t_map).speedup(&machine, 32);
    assert!(s_compact > 12.0, "compact should keep scaling: {s_compact}");
    assert!(
        s_map < s_compact,
        "map {s_map} must scale worse than compact {s_compact}"
    );

    // Saturation: the map gains little beyond 16 cores.
    let w = map.workload_tasked(t_map);
    let s16 = w.speedup(&machine, 16);
    let s32 = w.speedup(&machine, 32);
    assert!(s32 < s16 * 1.5, "map curve must flatten: {s16} → {s32}");
}

#[test]
fn fig10_shape_gpu_beats_multicore() {
    // Model-vs-model comparison at a mid-size grid: the simulated C1060
    // must beat every modelled multicore machine on evaluation, by
    // roughly the paper's factor 3 over the best of them.
    let d = 6;
    let spec = GridSpec::new(d, 6);
    let n_points = 5000usize;
    let cpu = SeqCpuModel::nehalem_core();

    let subspaces: u64 = (0..6)
        .map(|g| sg_core::combinatorics::subspace_count(d, g))
        .sum();
    let mut sim = CacheSim::nehalem();
    let traffic = trace_evaluation(StoreKind::Compact, spec, n_points, &mut sim);
    let t_seq = cpu.time(
        n_points as u64 * subspaces * (8 * d as u64 + 4),
        traffic.dram_bytes / 64,
    );

    // GPU side.
    let mut grid =
        sg_core::grid::CompactGrid::<f32>::from_fn(spec, |x| x.iter().product::<f64>() as f32);
    sg_core::hierarchize::hierarchize(&mut grid);
    let xs = sg_core::functions::halton_points(d, n_points);
    let (_, report) = evaluate_gpu(
        &grid,
        &xs,
        &GpuDevice::tesla_c1060(),
        &KernelConfig::default(),
    );
    let gpu_speedup = t_seq / report.time.total;

    let best_multicore = [
        MachineModel::opteron_8356_32core(),
        MachineModel::nehalem_ep_8core(),
        MachineModel::nehalem_920_4core(),
    ]
    .iter()
    .map(|m| traffic.workload(t_seq).speedup(m, m.cores))
    .fold(0.0f64, f64::max);

    assert!(
        gpu_speedup > 1.5 * best_multicore,
        "GPU {gpu_speedup} vs best multicore {best_multicore}"
    );
    assert!(
        gpu_speedup > 30.0 && gpu_speedup < 200.0,
        "GPU evaluation speedup {gpu_speedup} outside the plausible band around the paper's 70x"
    );
}

#[test]
fn gpu_hierarchization_speedup_band() {
    // Paper: compression up to 17× over one Nehalem core. Check the model
    // lands in a sane band at a mid-size grid.
    let d = 8;
    let spec = GridSpec::new(d, 6);
    let cpu = SeqCpuModel::nehalem_core();
    let mut sim = CacheSim::nehalem();
    let traffic = trace_hierarchization(StoreKind::Compact, spec, &mut sim);
    let n = spec.num_points();
    let instr = n * d as u64 * (3 * d as u64 + 24);
    let t_seq = cpu.time(instr, traffic.dram_bytes / 64);

    let mut grid =
        sg_core::grid::CompactGrid::<f32>::from_fn(spec, |x| x.iter().sum::<f64>() as f32);
    let report = hierarchize_gpu(
        &mut grid,
        &GpuDevice::tesla_c1060(),
        &KernelConfig::default(),
    );
    let speedup = t_seq / report.time.total;
    assert!(
        speedup > 3.0 && speedup < 60.0,
        "GPU hierarchization speedup {speedup} outside the plausible band around the paper's 17x"
    );
}

#[test]
fn evaluation_is_not_memory_bound_for_the_compact_structure() {
    // Fig. 11b: compact evaluation traffic is tiny, so the model scales
    // it almost linearly to 32 cores.
    let spec = GridSpec::new(6, 7);
    let machine = MachineModel::opteron_8356_32core();
    let mut sim = CacheSim::opteron_barcelona_aggregate();
    let p = trace_evaluation(StoreKind::Compact, spec, 500, &mut sim);
    let s = p.workload(1.0).speedup(&machine, 32);
    assert!(s > 25.0, "compact evaluation should scale: {s}");
}
