//! Replays the failing-case corpus (`tests/corpus/fuzz_seeds.txt`)
//! through the sg-fuzz differential executor.
//!
//! Each line of the corpus is an `<op> <seed>` pair: either a seed that
//! once exposed a real divergence (kept forever as a regression guard)
//! or a pinned clean canary. The corpus format is the same `op`/`seed`
//! vocabulary the fuzzer's reproducer lines print, so promoting a new
//! finding into the corpus is a one-line paste.

use sg_fuzz::{diff, Case, Injection, Op};

fn corpus() -> Vec<(Op, u64)> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/corpus/fuzz_seeds.txt"
    );
    let text = std::fs::read_to_string(path).expect("corpus file readable");
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (op, seed) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("corpus line {}: expected `<op> <seed>`", lineno + 1));
        let op = Op::parse(op)
            .unwrap_or_else(|| panic!("corpus line {}: unknown op {op:?}", lineno + 1));
        let seed = seed
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| seed.parse())
            .unwrap_or_else(|e| panic!("corpus line {}: bad seed: {e}", lineno + 1));
        entries.push((op, seed));
    }
    entries
}

#[test]
fn corpus_is_non_trivial() {
    let entries = corpus();
    assert!(entries.len() >= 10, "corpus shrank to {}", entries.len());
    // The corpus must keep exercising the op that once diverged.
    assert!(entries.iter().any(|(op, _)| *op == Op::Adaptive));
}

#[test]
fn every_corpus_seed_passes_the_differential_executor() {
    for (op, seed) in corpus() {
        let case = Case::new(op, seed);
        if let Err(failure) = diff::run_case(&case, Injection::None) {
            panic!(
                "corpus regression: op={} seed={seed:#x} diverged again: {}",
                op.name(),
                failure.detail
            );
        }
    }
}
