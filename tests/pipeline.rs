//! End-to-end pipeline tests following the paper's Fig. 1: simulation →
//! compression → storage → decompression → visualization, including the
//! full-grid entry point and the boundary extension.

use sg_core::boundary::BoundaryGrid;
use sg_core::evaluate::{evaluate, evaluate_batch_parallel};
use sg_core::full_grid::FullGrid;
use sg_core::functions::{halton_points, TestFunction};
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::{dehierarchize_parallel, hierarchize, hierarchize_parallel};
use sg_core::level::GridSpec;

#[test]
fn full_grid_to_sparse_compression_pipeline() {
    // Simulation output on a full grid … (zero boundary, as the default
    // grids assume; non-zero boundaries are covered by the §4.4 tests)
    let f = |x: &[f64]| (x[0] * 3.0).sin() * x[1] * (1.0 - x[1]) * 4.0 * x[2] * (1.0 - x[2]);
    let full = FullGrid::<f64>::from_fn(3, 6, f);

    // … compressed: restrict to the sparse grid and hierarchize.
    let spec = GridSpec::new(3, 6);
    let mut sparse = full.restrict_to_sparse(spec);
    hierarchize(&mut sparse);

    let ratio = full.len() as f64 / sparse.len() as f64;
    assert!(ratio > 10.0, "compression ratio {ratio} too small");

    // Decompression agrees with the full grid at shared lattice points
    // and stays close to it elsewhere.
    for x in halton_points(3, 200).chunks_exact(3) {
        let a = evaluate(&sparse, x);
        let b = full.interpolate(x);
        assert!((a - b).abs() < 0.05, "x={x:?}: sparse {a} vs full {b}");
    }
}

#[test]
fn serialize_store_decompress_roundtrip() {
    // The storage hop: only spec + coefficients cross the boundary.
    let spec = GridSpec::new(4, 5);
    let f = TestFunction::Parabola;
    let mut g = CompactGrid::<f32>::from_fn(spec, |x| f.eval(x) as f32);
    hierarchize(&mut g);

    // Binary codec (the wire format of the figures).
    let blob = sg_io::encode(&g);
    let restored: CompactGrid<f32> = sg_io::decode(&blob).unwrap();
    assert_eq!(restored.values(), g.values());
    assert_eq!(restored.spec(), g.spec());

    let x = [0.3, 0.6, 0.9, 0.125];
    assert_eq!(evaluate(&restored, &x), evaluate(&g, &x));

    // Text codec (the interchange format for external tools).
    let text = sg_io::encode_json(&g);
    let from_text: CompactGrid<f32> = sg_io::decode_json(&text).unwrap();
    assert_eq!(from_text.spec(), g.spec());
    assert_eq!(from_text.values(), g.values());
}

#[test]
fn parallel_pipeline_matches_sequential() {
    let spec = GridSpec::new(4, 5);
    let f = TestFunction::Gaussian;
    let mut seq = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
    let mut par = CompactGrid::<f64>::from_fn_parallel(spec, |x| f.eval(x));
    assert_eq!(seq.values(), par.values());

    hierarchize(&mut seq);
    hierarchize_parallel(&mut par);
    assert_eq!(seq.values(), par.values());

    let xs = halton_points(4, 100);
    let batch = evaluate_batch_parallel(&par, &xs, 16);
    for (x, &v) in xs.chunks_exact(4).zip(&batch) {
        assert_eq!(evaluate(&seq, x), v);
    }

    dehierarchize_parallel(&mut par);
    let nodal = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
    assert!(par.max_abs_diff(&nodal) < 1e-12);
}

#[test]
fn boundary_pipeline_handles_nonzero_boundaries() {
    // A function with non-trivial boundary values goes through the §4.4
    // extension end to end.
    let f = TestFunction::Oscillatory;
    let mut g: BoundaryGrid<f64> = BoundaryGrid::from_fn(3, 4, |x| f.eval(x));
    g.hierarchize();
    // Exact at grid points (including corners and edges)…
    let corner = [1.0, 1.0, 1.0];
    assert!((g.evaluate(&corner) - f.eval(&corner)).abs() < 1e-12);
    // …and approximate inside.
    let mut worst = 0.0f64;
    for x in halton_points(3, 300).chunks_exact(3) {
        worst = worst.max((g.evaluate(x) - f.eval(x)).abs());
    }
    assert!(worst < 0.05, "interior error {worst}");
}

#[test]
fn paper_scale_spec_is_addressable() {
    // The paper's largest grid: d=10, level 11 — the indexer must handle
    // it without allocating the 127M-value array.
    let spec = GridSpec::new(10, 11);
    assert_eq!(spec.num_points(), 127_574_017);
    let ix = sg_core::bijection::GridIndexer::new(spec);
    // Round-trip the extreme indices.
    for idx in [0u64, 1, 127_574_016, 63_000_000] {
        let (l, i) = ix.idx2gp_vec(idx);
        assert_eq!(ix.gp2idx(&l, &i), idx);
    }
    // 4-byte coefficients would fit in the Tesla's 4 GB device memory.
    assert!(spec.num_points() * 4 < (4u64 << 30));
}
