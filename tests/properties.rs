//! Property-based tests (sg-prop) on the core invariants.
//!
//! Each property runs across a deterministic family of seeds; on failure
//! the harness prints an `SG_PROP_SEED` value that reproduces the exact
//! case (see crates/prop).

use sg_core::bijection::{gp2idx_literal, GridIndexer};
use sg_core::boundary::{BoundaryGrid, BoundaryIndexer};
use sg_core::evaluate::evaluate;
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::{dehierarchize, hierarchize, hierarchize_parallel};
use sg_core::iter::{for_each_point, LevelIter};
use sg_core::level::{coordinate, hierarchical_child, hierarchical_parent, GridSpec, Side};
use sg_prop::{run_cases, Rng};

/// Small grid shapes (keep the products of tests fast).
fn rand_spec(rng: &mut Rng) -> GridSpec {
    GridSpec::new(rng.usize_in(1..=5), rng.usize_in(1..=5))
}

/// A grid with arbitrary (not smooth-function) coefficients.
fn rand_grid(rng: &mut Rng) -> CompactGrid<f64> {
    let spec = rand_spec(rng);
    let n = spec.num_points() as usize;
    let values = (0..n).map(|_| rng.f64_in(-100.0, 100.0)).collect();
    CompactGrid::from_parts(spec, values)
}

#[test]
fn bijection_roundtrip() {
    run_cases("bijection_roundtrip", 64, |rng| {
        let spec = rand_spec(rng);
        let ix = GridIndexer::new(spec);
        let idx = rng.u64_in(0..=ix.num_points() - 1);
        let (l, i) = ix.idx2gp_vec(idx);
        assert!(spec.contains(&l, &i));
        assert_eq!(ix.gp2idx(&l, &i), idx);
        // Alg. 5 as printed agrees with the table-driven version.
        assert_eq!(gp2idx_literal(&spec, &l, &i), idx);
    });
}

#[test]
fn enumeration_is_a_bijection_on_compositions() {
    run_cases("enumeration_is_a_bijection_on_compositions", 64, |rng| {
        let d = rng.usize_in(1..=5);
        let n = rng.usize_in(0..=6);
        let all: Vec<_> = LevelIter::new(d, n).collect();
        // Count matches the closed form.
        assert_eq!(
            all.len() as u64,
            sg_core::combinatorics::subspace_count(d, n)
        );
        // All distinct, all sum to n.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
        for l in &all {
            assert_eq!(l.iter().map(|&v| v as usize).sum::<usize>(), n);
        }
        // subspace_rank is exactly the enumeration position.
        let spec = GridSpec::new(d, n + 1);
        let ix = GridIndexer::new(spec);
        for (k, l) in all.iter().enumerate() {
            assert_eq!(ix.subspace_rank(l), k as u64);
        }
    });
}

#[test]
fn point_enumeration_is_a_bijection() {
    // The full point iterator built on the `next` successor (Alg. 4)
    // visits exactly Σ_{s<L} C(d-1+s, d-1)·2^s points, in gp2idx order,
    // with no collisions, and idx2gp∘gp2idx is the identity throughout.
    run_cases("point_enumeration_is_a_bijection", 48, |rng| {
        let d = rng.usize_in(1..=5);
        let levels = rng.usize_in(1..=5);
        let spec = GridSpec::new(d, levels);
        let ix = GridIndexer::new(spec);

        let closed_form: u64 = (0..levels as u64)
            .map(|s| sg_core::combinatorics::binomial(d as u64 - 1 + s, d as u64 - 1) * (1u64 << s))
            .sum();
        assert_eq!(spec.num_points(), closed_form);

        let mut visited = 0u64;
        for_each_point(&spec, |idx, l, i| {
            // Enumeration order *is* the bijection order: indices arrive
            // sequentially, so every index occurs exactly once.
            assert_eq!(idx, visited, "enumeration out of order at {l:?}/{i:?}");
            assert_eq!(ix.gp2idx(l, i), idx);
            let (l2, i2) = ix.idx2gp_vec(idx);
            assert_eq!((l2.as_slice(), i2.as_slice()), (l, i));
            visited += 1;
        });
        assert_eq!(
            visited, closed_form,
            "iterator count mismatch for d={d}, L={levels}"
        );
    });
}

#[test]
fn hierarchize_dehierarchize_roundtrip() {
    run_cases("hierarchize_dehierarchize_roundtrip", 64, |rng| {
        let grid = rand_grid(rng);
        let original = grid.clone();
        let mut g = grid;
        hierarchize(&mut g);
        dehierarchize(&mut g);
        assert!(g.max_abs_diff(&original) < 1e-9);
    });
}

#[test]
fn parallel_hierarchization_is_bitwise_equal() {
    run_cases("parallel_hierarchization_is_bitwise_equal", 64, |rng| {
        let grid = rand_grid(rng);
        let mut a = grid.clone();
        let mut b = grid;
        hierarchize(&mut a);
        hierarchize_parallel(&mut b);
        assert_eq!(a.values(), b.values());
    });
}

#[test]
fn hierarchization_is_linear() {
    run_cases("hierarchization_is_linear", 64, |rng| {
        // H(αu + v) = αH(u) + H(v): the transform is linear.
        let u = rand_grid(rng);
        let alpha = rng.f64_in(-3.0, 3.0);
        let spec = *u.spec();
        let v = CompactGrid::from_fn(spec, |x| x.iter().sum::<f64>().cos());
        let mut combined = CompactGrid::from_parts(
            spec,
            u.values()
                .iter()
                .zip(v.values())
                .map(|(&a, &b)| alpha * a + b)
                .collect(),
        );
        hierarchize(&mut combined);
        let mut hu = u;
        let mut hv = v;
        hierarchize(&mut hu);
        hierarchize(&mut hv);
        for (c, (a, b)) in combined
            .values()
            .iter()
            .zip(hu.values().iter().zip(hv.values()))
        {
            assert!(
                (c - (alpha * a + b)).abs() < 1e-8,
                "{c} vs {}",
                alpha * a + b
            );
        }
    });
}

#[test]
fn evaluation_is_linear_in_coefficients() {
    run_cases("evaluation_is_linear_in_coefficients", 64, |rng| {
        let grid = rand_grid(rng);
        let d = grid.spec().dim();
        let x: Vec<f64> = (0..d).map(|_| rng.f64_unit()).collect();
        let doubled = CompactGrid::from_parts(
            *grid.spec(),
            grid.values().iter().map(|&v| 2.0 * v).collect(),
        );
        let a = evaluate(&grid, &x);
        let b = evaluate(&doubled, &x);
        assert!((b - 2.0 * a).abs() < 1e-9);
    });
}

#[test]
fn interpolation_exact_at_grid_points() {
    run_cases("interpolation_exact_at_grid_points", 64, |rng| {
        // For an arbitrary nodal value assignment, hierarchization +
        // evaluation reproduce the nodal value at every grid point.
        let spec = rand_spec(rng);
        let n = spec.num_points();
        let mut g = CompactGrid::<f64>::new(spec);
        for v in g.values_mut() {
            *v = rng.f64_in(-50.0, 50.0);
        }
        let nodal = g.clone();
        hierarchize(&mut g);
        let ix = g.indexer().clone();
        let idx = rng.u64_in(0..=n - 1);
        let (l, i) = ix.idx2gp_vec(idx);
        let x: Vec<f64> = l
            .iter()
            .zip(&i)
            .map(|(&lt, &it)| coordinate(lt, it))
            .collect();
        let got = evaluate(&g, &x);
        let expect = nodal.values()[idx as usize];
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    });
}

#[test]
fn parent_child_navigation() {
    run_cases("parent_child_navigation", 128, |rng| {
        let l = rng.u8_in(0..=7);
        let count = 1u32 << l;
        let i = 2 * rng.u32_in(0..=count - 1) + 1;
        let side = if rng.bool() { Side::Left } else { Side::Right };
        // child's opposite-side parent is the original point
        let (cl, ci) = hierarchical_child(l, i, side);
        let back = match side {
            Side::Left => hierarchical_parent(cl, ci, Side::Right),
            Side::Right => hierarchical_parent(cl, ci, Side::Left),
        };
        assert_eq!(back, Some((l, i)));
        // parents are strictly coarser and bound the support
        if let Some((pl, pi)) = hierarchical_parent(l, i, side) {
            assert!(pl < l);
            let h = 1.0 / (1u64 << (l as u32 + 1)) as f64;
            let expect = match side {
                Side::Left => coordinate(l, i) - h,
                Side::Right => coordinate(l, i) + h,
            };
            assert_eq!(coordinate(pl, pi), expect);
        }
    });
}

#[test]
fn boundary_bijection_roundtrip() {
    run_cases("boundary_bijection_roundtrip", 64, |rng| {
        let d = rng.usize_in(1..=4);
        let levels = rng.usize_in(1..=4);
        let ix = BoundaryIndexer::new(d, levels);
        let idx = rng.u64_in(0..=ix.num_points() - 1);
        let p = ix.idx2gp(idx);
        assert_eq!(ix.gp2idx(&p), idx);
    });
}

#[test]
fn boundary_hierarchize_roundtrip_on_arbitrary_values() {
    run_cases(
        "boundary_hierarchize_roundtrip_on_arbitrary_values",
        48,
        |rng| {
            let d = rng.usize_in(1..=3);
            let levels = rng.usize_in(1..=4);
            let mut g: BoundaryGrid<f64> = BoundaryGrid::new(d, levels);
            for v in g.values_mut() {
                *v = rng.f64_in(-100.0, 100.0);
            }
            let original = g.clone();
            g.hierarchize();
            g.dehierarchize();
            assert!(g.max_abs_diff(&original) < 1e-9);
        },
    );
}

#[test]
fn binary_codec_roundtrip() {
    run_cases("binary_codec_roundtrip", 64, |rng| {
        let grid = rand_grid(rng);
        let blob = sg_io::encode(&grid);
        let back: CompactGrid<f64> = sg_io::decode(&blob).unwrap();
        assert_eq!(back.spec(), grid.spec());
        assert_eq!(back.values(), grid.values());
    });
}

#[test]
fn truncated_prefix_matches_directly_built_grid() {
    run_cases("truncated_prefix_matches_directly_built_grid", 48, |rng| {
        let d = rng.usize_in(1..=4);
        let levels = rng.usize_in(2..=5);
        let keep = rng.usize_in(1..=levels);
        let weights: Vec<f64> = (0..d).map(|_| rng.f64_in(0.0, 15.0)).collect();
        let spec = GridSpec::new(d, levels);
        let f = move |x: &[f64]| {
            x.iter()
                .zip(&weights)
                .map(|(&v, &w)| w * v * (1.0 - v))
                .sum::<f64>()
        };
        let mut fine = CompactGrid::<f64>::from_fn(spec, &f);
        hierarchize(&mut fine);
        let mut coarse = CompactGrid::<f64>::from_fn(GridSpec::new(d, keep), &f);
        hierarchize(&mut coarse);
        let prefix = fine.truncated(keep);
        assert_eq!(prefix.values(), coarse.values());
    });
}

#[test]
fn json_codec_roundtrip_preserves_everything() {
    run_cases("json_codec_roundtrip_preserves_everything", 48, |rng| {
        let grid = rand_grid(rng);
        let text = sg_io::encode_json(&grid);
        let back: CompactGrid<f64> = sg_io::decode_json(&text).unwrap();
        assert_eq!(back.spec(), grid.spec());
        assert_eq!(back.values(), grid.values());
    });
}
