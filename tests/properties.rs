//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use sg_core::bijection::{gp2idx_literal, GridIndexer};
use sg_core::boundary::BoundaryIndexer;
use sg_core::evaluate::evaluate;
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::{dehierarchize, hierarchize, hierarchize_parallel};
use sg_core::iter::LevelIter;
use sg_core::level::{coordinate, hierarchical_child, hierarchical_parent, GridSpec, Side};

/// Small grid shapes (keep the products of tests fast).
fn spec_strategy() -> impl Strategy<Value = GridSpec> {
    (1usize..=5, 1usize..=5).prop_map(|(d, l)| GridSpec::new(d, l))
}

/// A grid with arbitrary (not smooth-function) coefficients.
fn grid_strategy() -> impl Strategy<Value = CompactGrid<f64>> {
    spec_strategy().prop_flat_map(|spec| {
        let n = spec.num_points() as usize;
        proptest::collection::vec(-100.0f64..100.0, n)
            .prop_map(move |values| CompactGrid::from_parts(spec, values))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bijection_roundtrip(spec in spec_strategy(), seed in any::<u64>()) {
        let ix = GridIndexer::new(spec);
        let idx = seed % ix.num_points();
        let (l, i) = ix.idx2gp_vec(idx);
        prop_assert!(spec.contains(&l, &i));
        prop_assert_eq!(ix.gp2idx(&l, &i), idx);
        // Alg. 5 as printed agrees with the table-driven version.
        prop_assert_eq!(gp2idx_literal(&spec, &l, &i), idx);
    }

    #[test]
    fn enumeration_is_a_bijection_on_compositions(d in 1usize..=5, n in 0usize..=6) {
        let all: Vec<_> = LevelIter::new(d, n).collect();
        // Count matches the closed form.
        prop_assert_eq!(all.len() as u64, sg_core::combinatorics::subspace_count(d, n));
        // All distinct, all sum to n.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), all.len());
        for l in &all {
            prop_assert_eq!(l.iter().map(|&v| v as usize).sum::<usize>(), n);
        }
        // subspace_rank is exactly the enumeration position.
        let spec = GridSpec::new(d, n + 1);
        let ix = GridIndexer::new(spec);
        for (k, l) in all.iter().enumerate() {
            prop_assert_eq!(ix.subspace_rank(l), k as u64);
        }
    }

    #[test]
    fn hierarchize_dehierarchize_roundtrip(grid in grid_strategy()) {
        let original = grid.clone();
        let mut g = grid;
        hierarchize(&mut g);
        dehierarchize(&mut g);
        prop_assert!(g.max_abs_diff(&original) < 1e-9);
    }

    #[test]
    fn parallel_hierarchization_is_bitwise_equal(grid in grid_strategy()) {
        let mut a = grid.clone();
        let mut b = grid;
        hierarchize(&mut a);
        hierarchize_parallel(&mut b);
        prop_assert_eq!(a.values(), b.values());
    }

    #[test]
    fn hierarchization_is_linear(grid in grid_strategy(), alpha in -3.0f64..3.0) {
        // H(αu + v) = αH(u) + H(v): the transform is linear.
        let spec = *grid.spec();
        let u = grid.clone();
        let v = CompactGrid::from_fn(spec, |x| x.iter().sum::<f64>().cos());
        let mut combined = CompactGrid::from_parts(
            spec,
            u.values().iter().zip(v.values()).map(|(&a, &b)| alpha * a + b).collect(),
        );
        hierarchize(&mut combined);
        let mut hu = u;
        let mut hv = v;
        hierarchize(&mut hu);
        hierarchize(&mut hv);
        for (c, (a, b)) in combined.values().iter().zip(hu.values().iter().zip(hv.values())) {
            prop_assert!((c - (alpha * a + b)).abs() < 1e-8, "{c} vs {}", alpha * a + b);
        }
    }

    #[test]
    fn evaluation_is_linear_in_coefficients(grid in grid_strategy(), seed in any::<u64>()) {
        let spec = *grid.spec();
        let d = spec.dim();
        let x: Vec<f64> = (0..d)
            .map(|t| ((seed >> (8 * (t % 8))) & 0xFF) as f64 / 255.0)
            .collect();
        let doubled = CompactGrid::from_parts(
            spec,
            grid.values().iter().map(|&v| 2.0 * v).collect(),
        );
        let a = evaluate(&grid, &x);
        let b = evaluate(&doubled, &x);
        prop_assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn interpolation_exact_at_grid_points(spec in spec_strategy(), seed in any::<u64>()) {
        // For an arbitrary nodal value assignment, hierarchization +
        // evaluation reproduce the nodal value at every grid point.
        let n = spec.num_points();
        let mut g = CompactGrid::<f64>::new(spec);
        for (k, v) in g.values_mut().iter_mut().enumerate() {
            *v = (((seed ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 16) & 0xFFFF) as f64
                / 655.36 - 50.0;
        }
        let nodal = g.clone();
        hierarchize(&mut g);
        let ix = g.indexer().clone();
        let idx = seed % n;
        let (l, i) = ix.idx2gp_vec(idx);
        let x: Vec<f64> = l.iter().zip(&i).map(|(&lt, &it)| coordinate(lt, it)).collect();
        let got = evaluate(&g, &x);
        let expect = nodal.values()[idx as usize];
        prop_assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn parent_child_navigation(l in 0u8..8, seed in any::<u64>(), side_bit in any::<bool>()) {
        let count = 1u32 << l;
        let i = 2 * (seed as u32 % count) + 1;
        let side = if side_bit { Side::Left } else { Side::Right };
        // child's opposite-side parent is the original point
        let (cl, ci) = hierarchical_child(l, i, side);
        let back = match side {
            Side::Left => hierarchical_parent(cl, ci, Side::Right),
            Side::Right => hierarchical_parent(cl, ci, Side::Left),
        };
        prop_assert_eq!(back, Some((l, i)));
        // parents are strictly coarser and bound the support
        if let Some((pl, pi)) = hierarchical_parent(l, i, side) {
            prop_assert!(pl < l);
            let h = 1.0 / (1u64 << (l as u32 + 1)) as f64;
            let expect = match side {
                Side::Left => coordinate(l, i) - h,
                Side::Right => coordinate(l, i) + h,
            };
            prop_assert_eq!(coordinate(pl, pi), expect);
        }
    }

    #[test]
    fn boundary_bijection_roundtrip(d in 1usize..=4, levels in 1usize..=4, seed in any::<u64>()) {
        let ix = BoundaryIndexer::new(d, levels);
        let idx = seed % ix.num_points();
        let p = ix.idx2gp(idx);
        prop_assert_eq!(ix.gp2idx(&p), idx);
    }

    #[test]
    fn boundary_hierarchize_roundtrip_on_arbitrary_values(
        d in 1usize..=3,
        levels in 1usize..=4,
        seed in any::<u64>(),
    ) {
        use sg_core::boundary::BoundaryGrid;
        let mut g: BoundaryGrid<f64> = BoundaryGrid::new(d, levels);
        let mut state = seed | 1;
        for v in g.values_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((state >> 20) & 0xFFFF) as f64 / 327.68 - 100.0;
        }
        let original = g.clone();
        g.hierarchize();
        g.dehierarchize();
        prop_assert!(g.max_abs_diff(&original) < 1e-9);
    }

    #[test]
    fn binary_codec_roundtrip(grid in grid_strategy()) {
        let blob = sg_io::encode(&grid);
        let back: CompactGrid<f64> = sg_io::decode(&blob).unwrap();
        prop_assert_eq!(back.spec(), grid.spec());
        prop_assert_eq!(back.values(), grid.values());
    }

    #[test]
    fn truncated_prefix_matches_directly_built_grid(
        d in 1usize..=4,
        levels in 2usize..=5,
        keep in 1usize..=5,
        seed in any::<u64>(),
    ) {
        let keep = keep.min(levels);
        let spec = GridSpec::new(d, levels);
        let f = move |x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(t, &v)| ((seed >> (t % 8)) & 0xF) as f64 * v * (1.0 - v))
                .sum::<f64>()
        };
        let mut fine = CompactGrid::<f64>::from_fn(spec, f);
        hierarchize(&mut fine);
        let mut coarse = CompactGrid::<f64>::from_fn(GridSpec::new(d, keep), f);
        hierarchize(&mut coarse);
        let prefix = fine.truncated(keep);
        prop_assert_eq!(prefix.values(), coarse.values());
    }

    #[test]
    fn serde_roundtrip_preserves_everything(grid in grid_strategy()) {
        let blob = serde_json::to_vec(&grid).unwrap();
        let back: CompactGrid<f64> = serde_json::from_slice(&blob).unwrap();
        prop_assert_eq!(back.spec(), grid.spec());
        prop_assert_eq!(back.values(), grid.values());
    }
}
