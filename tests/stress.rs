//! Paper-scale stress tests — `#[ignore]`d by default, run with
//! `cargo test --release -p sg-apps --test stress -- --ignored`.

use sg_core::evaluate::{evaluate, evaluate_batch_parallel};
use sg_core::functions::{halton_points, TestFunction};
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::{dehierarchize_parallel, hierarchize_parallel};
use sg_core::level::GridSpec;

/// The paper's d = 10, level 8 grid (1.86M points) through the full
/// pipeline in f32, as the GPU configuration would hold it.
#[test]
#[ignore = "paper-scale run (~1 minute); invoke with --ignored"]
fn ten_dimensional_pipeline_at_scale() {
    let spec = GridSpec::new(10, 8);
    assert_eq!(spec.num_points(), 1_862_145);
    let f = TestFunction::Parabola;
    let mut grid: CompactGrid<f32> = CompactGrid::from_fn_parallel(spec, |x| f.eval(x) as f32);
    hierarchize_parallel(&mut grid);

    // Exact at a deep grid point.
    let (l, i) = grid.indexer().idx2gp_vec(spec.num_points() - 1);
    let x: Vec<f64> = l
        .iter()
        .zip(&i)
        .map(|(&lt, &it)| sg_core::level::coordinate(lt, it))
        .collect();
    let err = (evaluate(&grid, &x) as f64 - f.eval(&x)).abs();
    assert!(err < 1e-5, "grid-point error {err}");

    // The paper's visualization workload: 10^5 interpolation points.
    let xs = halton_points(10, 100_000);
    let values = evaluate_batch_parallel(&grid, &xs, 64);
    assert_eq!(values.len(), 100_000);
    assert!(values.iter().all(|v| v.is_finite()));

    // And the inverse transform restores the nodal values.
    dehierarchize_parallel(&mut grid);
    let nodal: CompactGrid<f32> = CompactGrid::from_fn_parallel(spec, |x| f.eval(x) as f32);
    assert!(grid.max_abs_diff(&nodal) < 1e-4);
}

/// Serialization of a multi-hundred-MB-class grid stays exact.
#[test]
#[ignore = "allocates ~250 MB; invoke with --ignored"]
fn large_grid_binary_roundtrip() {
    let spec = GridSpec::new(8, 9);
    let mut grid: CompactGrid<f32> =
        CompactGrid::from_fn_parallel(spec, |x| TestFunction::Gaussian.eval(x) as f32);
    hierarchize_parallel(&mut grid);
    let blob = sg_io::encode(&grid);
    assert_eq!(blob.len(), 32 + grid.len() * 4);
    let back: CompactGrid<f32> = sg_io::decode(&blob).unwrap();
    assert_eq!(back.values(), grid.values());
}

/// The indexer handles the paper's headline 127.5M-point shape without
/// materializing values.
#[test]
#[ignore = "exhaustive index sweep (~1 minute); invoke with --ignored"]
fn headline_indexer_sweep() {
    let spec = GridSpec::new(10, 11);
    let ix = sg_core::bijection::GridIndexer::new(spec);
    let n = ix.num_points();
    assert_eq!(n, 127_574_017);
    // Stride through the whole range.
    let mut l = vec![0u8; 10];
    let mut i = vec![0u32; 10];
    for k in 0..10_000u64 {
        let idx = k * (n / 10_000);
        ix.idx2gp(idx, &mut l, &mut i);
        assert_eq!(ix.gp2idx(&l, &i), idx);
    }
}
