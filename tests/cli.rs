//! End-to-end tests of the `sgtool` command-line front end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn sgtool(args: &[&str]) -> Output {
    sgtool_env(args, &[])
}

fn sgtool_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sgtool"))
        .args(args)
        .envs(envs.iter().copied())
        .output()
        .expect("failed to run sgtool")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sgtool-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn compress_info_eval_roundtrip() {
    let file = temp_path("roundtrip.sgc");
    let f = file.to_str().unwrap();

    let o = sgtool(&[
        "compress",
        "--dims",
        "3",
        "--level",
        "5",
        "--function",
        "parabola",
        "--out",
        f,
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("351 points"), "{}", stdout(&o));

    let o = sgtool(&["info", f]);
    assert!(o.status.success());
    let s = stdout(&o);
    assert!(s.contains("dimensionality : 3"));
    assert!(s.contains("points         : 351"));
    assert!(s.contains("integral"));

    // The parabola peaks at 1 in the centre, exactly interpolated.
    let o = sgtool(&["eval", f, "0.5,0.5,0.5"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("= 1.0000000000"), "{}", stdout(&o));

    let o = sgtool(&["integrate", f]);
    assert!(o.status.success());
    let integral: f64 = stdout(&o).trim().parse().unwrap();
    // ∫ (4x(1−x))³ ≈ (2/3)³ at this resolution.
    assert!(
        (integral - (2.0f64 / 3.0).powi(3)).abs() < 0.01,
        "{integral}"
    );

    let o = sgtool(&[
        "slice",
        f,
        "--axes",
        "0,1",
        "--at",
        "0.5,0.5,0.5",
        "--width",
        "20",
    ]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("axes x=0 y=1"));

    std::fs::remove_file(&file).ok();
}

#[test]
fn rejects_bad_inputs() {
    let o = sgtool(&["eval", "/nonexistent/grid.sgc", "0.5"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("cannot read"));

    let o = sgtool(&[
        "compress",
        "--dims",
        "2",
        "--level",
        "4",
        "--function",
        "nope",
        "--out",
        "/tmp/x.sgc",
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown function"));

    // Invalid grid shapes exit cleanly rather than panicking.
    let o = sgtool(&[
        "compress",
        "--dims",
        "0",
        "--level",
        "3",
        "--function",
        "parabola",
        "--out",
        "/tmp/x.sgc",
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("dimension must be at least 1"));
    let o = sgtool(&[
        "compress",
        "--dims",
        "2",
        "--level",
        "40",
        "--function",
        "parabola",
        "--out",
        "/tmp/x.sgc",
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("level above 31"));

    let o = sgtool(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));

    let o = sgtool(&[]);
    assert!(!o.status.success());
}

#[test]
fn eval_validates_points() {
    let file = temp_path("validate.sgc");
    let f = file.to_str().unwrap();
    let o = sgtool(&[
        "compress",
        "--dims",
        "2",
        "--level",
        "3",
        "--function",
        "parabola",
        "--out",
        f,
    ]);
    assert!(o.status.success());

    // Wrong arity.
    let o = sgtool(&["eval", f, "0.5,0.5,0.5"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("coordinates"));

    // Out of domain.
    let o = sgtool(&["eval", f, "0.5,1.5"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unit domain"));

    std::fs::remove_file(&file).ok();
}

#[test]
fn detects_corrupt_files() {
    let file = temp_path("corrupt.sgc");
    let f = file.to_str().unwrap();
    let o = sgtool(&[
        "compress",
        "--dims",
        "2",
        "--level",
        "3",
        "--function",
        "gaussian",
        "--out",
        f,
    ]);
    assert!(o.status.success());

    let mut blob = std::fs::read(&file).unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0xFF;
    std::fs::write(&file, &blob).unwrap();

    let o = sgtool(&["info", f]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("checksum"), "{}", stderr(&o));

    std::fs::remove_file(&file).ok();
}

#[test]
fn flags_before_the_file_and_one_dimensional_eval() {
    let file = temp_path("flags.sgc");
    let f = file.to_str().unwrap();
    let o = sgtool(&[
        "compress",
        "--dims",
        "1",
        "--level",
        "4",
        "--function",
        "parabola",
        "--out",
        f,
    ]);
    assert!(o.status.success(), "{}", stderr(&o));

    // Flag value before the positional file must not be mistaken for it.
    let o = sgtool(&["eval", "--unused-flag", "value", f, "0.5"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("= 1.0000000000"), "{}", stdout(&o));

    // 1-d grids take bare-number points (no comma).
    let o = sgtool(&["eval", f, "0.25"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("u(0.25)"));

    std::fs::remove_file(&file).ok();
}

#[test]
fn render_writes_a_valid_ppm() {
    let file = temp_path("render.sgc");
    let img = temp_path("render.ppm");
    let f = file.to_str().unwrap();
    let o = sgtool(&[
        "compress",
        "--dims",
        "3",
        "--level",
        "4",
        "--function",
        "gaussian",
        "--out",
        f,
    ]);
    assert!(o.status.success());

    let o = sgtool(&[
        "render",
        f,
        "--out",
        img.to_str().unwrap(),
        "--axes",
        "0,2",
        "--width",
        "32",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let bytes = std::fs::read(&img).unwrap();
    assert!(bytes.starts_with(b"P6\n32 32\n255\n"));
    assert_eq!(bytes.len(), b"P6\n32 32\n255\n".len() + 32 * 32 * 3);
    // The Gaussian peaks in the centre: the centre pixel must be brighter
    // (more yellow/red channel) than the corner.
    let pix = |row: usize, col: usize| {
        let off = b"P6\n32 32\n255\n".len() + (row * 32 + col) * 3;
        bytes[off] as u32 + bytes[off + 1] as u32 + bytes[off + 2] as u32
    };
    assert!(pix(16, 16) > pix(0, 0), "centre must out-shine the corner");

    std::fs::remove_file(&file).ok();
    std::fs::remove_file(&img).ok();
}

#[test]
fn metrics_json_flag_writes_a_telemetry_report() {
    let file = temp_path("metrics.sgc");
    let metrics = temp_path("metrics.json");
    let f = file.to_str().unwrap();
    let m = metrics.to_str().unwrap();

    // The flag is global: it may appear before the subcommand arguments.
    let o = sgtool(&[
        "compress",
        "--metrics-json",
        m,
        "--dims",
        "3",
        "--level",
        "5",
        "--function",
        "parabola",
        "--out",
        f,
    ]);
    assert!(o.status.success(), "{}", stderr(&o));

    let text = std::fs::read_to_string(&metrics).unwrap();
    let report = sg_json::parse(&text).expect("metrics file must be valid JSON");
    let counters = report
        .get("counters")
        .expect("report has a counters section");
    let idx2gp = counters
        .get("core.bijection.idx2gp_calls")
        .and_then(|v| v.as_f64())
        .expect("idx2gp call counter present");
    assert!(
        idx2gp > 0.0,
        "compressing a grid must exercise the bijection"
    );
    assert!(report.get("spans").is_some(), "report has a spans section");
    assert!(
        report.get("histograms").is_some(),
        "report has a histograms section"
    );
    let prov = report.get("provenance").expect("report carries provenance");
    assert!(prov.get("timestamp_utc").and_then(|v| v.as_str()).is_some());
    assert!(prov.get("threads").and_then(|v| v.as_f64()).is_some());
    assert!(
        report.get("regions").is_some(),
        "report has a regions section"
    );

    // Commands that fail must not write a metrics file.
    let bogus = temp_path("metrics-bogus.json");
    let o = sgtool(&[
        "info",
        "/nonexistent/grid.sgc",
        "--metrics-json",
        bogus.to_str().unwrap(),
    ]);
    assert!(!o.status.success());
    assert!(!bogus.exists(), "no metrics on failure");

    std::fs::remove_file(&file).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn unknown_sg_kernel_is_a_usage_error_not_a_panic() {
    let o = sgtool_env(&["help"], &[("SG_KERNEL", "bogus")]);
    assert_eq!(o.status.code(), Some(2), "{}", stderr(&o));
    let e = stderr(&o);
    assert!(
        e.contains("SG_KERNEL") && e.contains("bogus"),
        "error must name the variable and the bad value: {e}"
    );
    // A structurally valid but unavailable ISA is also a clean exit 2.
    let absent = if cfg!(target_arch = "x86_64") {
        "neon"
    } else {
        "avx2"
    };
    let o = sgtool_env(&["help"], &[("SG_KERNEL", absent)]);
    assert_eq!(o.status.code(), Some(2), "{}", stderr(&o));
    assert!(stderr(&o).contains("not available"), "{}", stderr(&o));
}

#[test]
fn sg_kernel_selection_is_honored_and_stamped_into_provenance() {
    let file = temp_path("kernel-prov.sgc");
    let f = file.to_str().unwrap();
    let base = [
        "compress",
        "--dims",
        "3",
        "--level",
        "5",
        "--function",
        "parabola",
        "--out",
        f,
    ];

    // Forced scalar: accepted everywhere, stamped verbatim.
    let metrics = temp_path("kernel-prov-scalar.json");
    let m = metrics.to_str().unwrap();
    let mut args = base.to_vec();
    args.extend_from_slice(&["--metrics-json", m]);
    let o = sgtool_env(&args, &[("SG_KERNEL", "scalar")]);
    assert!(o.status.success(), "{}", stderr(&o));
    let report = sg_json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(
        report["provenance"]["kernel"].as_str(),
        Some("scalar"),
        "provenance must record the forced kernel"
    );
    std::fs::remove_file(&metrics).ok();

    // Auto (default): the stamp is whatever the host dispatched — one of
    // the known kernel names, and on x86-64 with AVX2 specifically avx2.
    let metrics = temp_path("kernel-prov-auto.json");
    let m = metrics.to_str().unwrap();
    let mut args = base.to_vec();
    args.extend_from_slice(&["--metrics-json", m]);
    let o = sgtool_env(&args, &[("SG_KERNEL", "auto")]);
    assert!(o.status.success(), "{}", stderr(&o));
    let report = sg_json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let kernel = report["provenance"]["kernel"].as_str().unwrap().to_string();
    assert!(
        ["scalar", "avx2", "neon"].contains(&kernel.as_str()),
        "unexpected kernel stamp {kernel:?}"
    );
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        assert_eq!(kernel, "avx2", "AVX2 host must auto-dispatch avx2");
    }
    std::fs::remove_file(&metrics).ok();
    std::fs::remove_file(&file).ok();
}

#[test]
fn profile_emits_valid_trace_and_summary() {
    let trace = temp_path("profile-trace.json");
    let t = trace.to_str().unwrap();
    let workers = 2u64;

    let o = Command::new(env!("CARGO_BIN_EXE_sgtool"))
        .args([
            "profile", "--dims", "3", "--level", "4", "--points", "256", "--out", t,
        ])
        .env("SG_PAR_THREADS", workers.to_string())
        .output()
        .expect("failed to run sgtool");
    assert!(o.status.success(), "{}", stderr(&o));

    // Summary must expose the load-imbalance diagnosis.
    let s = stdout(&o);
    assert!(s.contains("imbalance"), "{s}");
    assert!(s.contains("latency histograms"), "{s}");

    // The trace file is valid Trace Event Format: complete events with
    // ph/ts/dur/tid, at least one per worker thread and the coordinator.
    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = sg_json::parse(&text).expect("trace file must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("trace has a traceEvents array");
    assert!(!events.is_empty());
    let mut tids_seen = std::collections::BTreeSet::new();
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"), "{ev:?}");
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts present");
        let dur = ev.get("dur").and_then(|v| v.as_f64()).expect("dur present");
        assert!(ts >= 0.0 && dur >= 0.0);
        let tid = ev.get("tid").and_then(|v| v.as_f64()).expect("tid present") as u64;
        assert!(tid <= workers, "tid {tid} out of range");
        tids_seen.insert(tid);
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
    }
    for tid in 0..=workers {
        assert!(tids_seen.contains(&tid), "no events for thread {tid}");
    }

    // The sg metadata key carries regions and provenance.
    let sg = doc.get("sg").expect("sg metadata present");
    assert!(sg.get("provenance").is_some());
    let regions = sg.get("regions").and_then(|r| r.as_object()).unwrap();
    assert!(!regions.is_empty(), "regions report must not be empty");
    for (key, stat) in regions {
        assert!(
            stat.get("imbalance").and_then(|v| v.as_f64()).is_some(),
            "region {key} lacks an imbalance ratio"
        );
    }

    std::fs::remove_file(&trace).ok();
}

#[test]
fn profile_failure_writes_no_trace() {
    let trace = temp_path("profile-bad.json");
    let o = sgtool(&[
        "profile",
        "--dims",
        "3",
        "--level",
        "4",
        "--function",
        "nope",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown function"));
    assert!(!trace.exists(), "no trace on failure");
}

#[test]
fn help_prints_usage() {
    let o = sgtool(&["--help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("usage:"));
}

fn exit_code(o: &Output) -> i32 {
    o.status.code().expect("sgtool terminated by signal")
}

#[test]
fn exit_codes_are_pinned() {
    // 2 — usage errors: bad invocation, not bad data.
    assert_eq!(exit_code(&sgtool(&[])), 2);
    assert_eq!(exit_code(&sgtool(&["frobnicate"])), 2);
    assert_eq!(exit_code(&sgtool(&["checkpoint"])), 2, "missing --out");
    assert_eq!(exit_code(&sgtool(&["restore"])), 2, "missing snapshot");
    assert_eq!(exit_code(&sgtool(&["verify"])), 2, "missing snapshot");
    assert_eq!(exit_code(&sgtool(&["eval"])), 2, "missing grid file");

    // A shape whose point count overflows u64 is a diagnostic, not a
    // panic (regression for the old `expect("grid point count overflows
    // u64")` path).
    let o = sgtool(&[
        "compress",
        "--dims",
        "60",
        "--level",
        "31",
        "--out",
        "/tmp/never.sgc",
    ]);
    assert_eq!(exit_code(&o), 2, "{}", stderr(&o));
    assert!(stderr(&o).contains("grid too large"), "{}", stderr(&o));

    // 4 — the operating system failed us.
    assert_eq!(exit_code(&sgtool(&["info", "/nonexistent/grid.sgc"])), 4);
    assert_eq!(exit_code(&sgtool(&["verify", "/nonexistent/snap"])), 4);
    assert_eq!(
        exit_code(&sgtool(&[
            "restore",
            "/nonexistent/snap",
            "--out",
            "/tmp/x"
        ])),
        4
    );

    // 3 — corrupt data, with a one-line stderr diagnostic.
    let file = temp_path("pinned-corrupt.sgc");
    std::fs::write(&file, b"this is not a grid file").unwrap();
    let o = sgtool(&["info", file.to_str().unwrap()]);
    assert_eq!(exit_code(&o), 3);
    let err = stderr(&o);
    assert_eq!(err.lines().count(), 1, "one-line diagnostic, got: {err}");
    assert!(err.starts_with("sgtool: "), "{err}");
    std::fs::remove_file(&file).ok();
}

#[test]
fn checkpoint_restore_verify_flow() {
    let snap = temp_path("flow.sgcs");
    let plain = temp_path("flow.sgc");
    let restored = temp_path("flow-restored.sgc");
    let s = snap.to_str().unwrap();
    let p = plain.to_str().unwrap();
    let r = restored.to_str().unwrap();

    // Checkpoint straight from a function.
    let o = sgtool(&[
        "checkpoint",
        "--dims",
        "3",
        "--level",
        "4",
        "--function",
        "gaussian",
        "--out",
        s,
        "--provenance",
        "cli-test",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));

    // Pristine snapshot: verify exits 0 and reports every section intact.
    let o = sgtool(&["verify", s]);
    assert_eq!(exit_code(&o), 0, "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("all 4 sections intact"), "{out}");
    assert!(out.contains("cli-test"), "provenance surfaced: {out}");

    // Snapshots are first-class grid files: info/eval sniff the format.
    let o = sgtool(&["info", s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("points         : 111"));

    // Restore the intact snapshot to SGC1 and cross-check against a
    // direct compress of the same function: bitwise identical.
    let o = sgtool(&["restore", s, "--out", r]);
    assert_eq!(exit_code(&o), 0, "{}", stderr(&o));
    let o = sgtool(&[
        "compress",
        "--dims",
        "3",
        "--level",
        "4",
        "--function",
        "gaussian",
        "--out",
        p,
    ]);
    assert!(o.status.success());
    assert_eq!(
        std::fs::read(&restored).unwrap(),
        std::fs::read(&plain).unwrap(),
        "restore must reproduce the directly-compressed grid bitwise"
    );

    // Damage one section: verify and bare restore exit 3 naming the lost
    // group; restore --function rebuilds it exactly.
    let mut bytes = std::fs::read(&snap).unwrap();
    let n = bytes.len();
    bytes[n / 2] ^= 0x20; // lands in a section payload
    std::fs::write(&snap, &bytes).unwrap();

    let o = sgtool(&["verify", s]);
    assert_eq!(exit_code(&o), 3, "{}", stderr(&o));
    assert!(stderr(&o).contains("level groups"), "{}", stderr(&o));

    let o = sgtool(&["restore", s, "--out", r]);
    assert_eq!(exit_code(&o), 3, "{}", stderr(&o));
    assert!(stderr(&o).contains("lost"), "{}", stderr(&o));

    let o = sgtool(&["restore", s, "--out", r, "--function", "gaussian"]);
    assert_eq!(exit_code(&o), 0, "{}", stderr(&o));
    assert!(stdout(&o).contains("rebuilding lost level groups"));
    assert_eq!(
        std::fs::read(&restored).unwrap(),
        std::fs::read(&plain).unwrap(),
        "repair must be bitwise exact"
    );

    // Checkpointing an existing SGC1 file round-trips too.
    let o = sgtool(&["checkpoint", p, "--out", s]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = sgtool(&["verify", s]);
    assert_eq!(exit_code(&o), 0);

    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&plain).ok();
    std::fs::remove_file(&restored).ok();
}

#[test]
fn fuzz_snapshot_faults_writes_schema_complete_report() {
    let json = temp_path("snapfault.json");
    let j = json.to_str().unwrap();
    let o = sgtool(&[
        "fuzz",
        "--budget-cases",
        "0",
        "--sched-interleavings",
        "0",
        "--snapshot-faults",
        "21",
        "--json",
        j,
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("snapshot-faults: 21 injected"));

    let doc = sg_json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let sf = doc.get("snapshot_faults").expect("snapshot_faults section");
    assert_eq!(sf.get("cases").and_then(|v| v.as_f64()), Some(21.0));
    let full = sf.get("full_recoveries").and_then(|v| v.as_f64()).unwrap();
    let partial = sf
        .get("partial_recoveries")
        .and_then(|v| v.as_f64())
        .unwrap();
    let clean = sf.get("clean_errors").and_then(|v| v.as_f64()).unwrap();
    assert_eq!(full + partial + clean, 21.0, "every fault accounted for");
    let violations = sf.get("violations").and_then(|v| v.as_array()).unwrap();
    assert!(violations.is_empty(), "{violations:?}");
    let per_class = sf.get("per_class").and_then(|v| v.as_object()).unwrap();
    assert_eq!(per_class.len(), 8, "all eight fault classes injected");

    std::fs::remove_file(&json).ok();
}

#[test]
fn fuzz_combination_faults_writes_schema_complete_report() {
    let json = temp_path("combfault.json");
    let j = json.to_str().unwrap();
    let o = sgtool(&[
        "fuzz",
        "--budget-cases",
        "0",
        "--sched-interleavings",
        "0",
        "--combination-faults",
        "30",
        "--json",
        j,
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("combination-faults: 30 injected"));

    let doc = sg_json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let cf = doc
        .get("combination_faults")
        .expect("combination_faults section");
    assert_eq!(cf.get("cases").and_then(|v| v.as_f64()), Some(30.0));
    let full = cf.get("full_recoveries").and_then(|v| v.as_f64()).unwrap();
    let partial = cf
        .get("partial_recoveries")
        .and_then(|v| v.as_f64())
        .unwrap();
    let clean = cf.get("clean_errors").and_then(|v| v.as_f64()).unwrap();
    assert_eq!(full + partial + clean, 30.0, "every fault accounted for");
    let recompute = cf.get("recompute_cases").and_then(|v| v.as_f64()).unwrap();
    let reweight = cf.get("reweight_cases").and_then(|v| v.as_f64()).unwrap();
    assert_eq!(recompute + reweight, 30.0, "every case has a policy");
    assert!(recompute > 0.0 && reweight > 0.0, "both policies exercised");
    let violations = cf.get("violations").and_then(|v| v.as_array()).unwrap();
    assert!(violations.is_empty(), "{violations:?}");
    let per_class = cf.get("per_class").and_then(|v| v.as_object()).unwrap();
    assert_eq!(
        per_class.len(),
        10,
        "8 storage classes + task-panic + dropped-pre-commit"
    );

    std::fs::remove_file(&json).ok();
}

#[test]
fn combine_run_cross_validates_and_verify_reads_the_manifest() {
    let manifest = temp_path("combine.sgcm");
    let json = temp_path("combine.json");
    let m = manifest.to_str().unwrap();
    let j = json.to_str().unwrap();

    // Clean run under each policy: cross-validation passes, the JSON
    // report is schema-complete, and the published manifest verifies.
    for policy in ["recompute", "reweight"] {
        let o = sgtool(&[
            "combine",
            "run",
            "--dims",
            "3",
            "--level",
            "4",
            "--function",
            "sine-product",
            "--policy",
            policy,
            "--queries",
            "64",
            "--out",
            m,
            "--json",
            j,
        ]);
        assert_eq!(exit_code(&o), 0, "policy={policy}: {}", stderr(&o));
        let out = stdout(&o);
        assert!(out.contains("outcome Clean"), "{out}");
        assert!(out.contains("cross-validation"), "{out}");
        assert!(out.contains("— ok"), "{out}");

        let doc = sg_json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(
            doc.get("cross_validated").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(
            doc.get("policy").and_then(|v| v.as_str()),
            Some(policy),
            "policy stamped into the report"
        );
        assert_eq!(doc.get("outcome").and_then(|v| v.as_str()), Some("clean"));
        let diff = doc.get("max_abs_diff").and_then(|v| v.as_f64()).unwrap();
        let tol = doc.get("tolerance").and_then(|v| v.as_f64()).unwrap();
        assert!(diff <= tol, "{diff} > {tol}");
        assert!(doc.get("provenance").is_some(), "report carries provenance");

        let o = sgtool(&["combine", "verify", m]);
        assert_eq!(exit_code(&o), 0, "{}", stderr(&o));
        assert!(stdout(&o).contains("components intact"), "{}", stdout(&o));
    }

    // Injected faults under the default policy mix stay violation-free.
    let o = sgtool(&[
        "combine",
        "run",
        "--dims",
        "2",
        "--level",
        "3",
        "--faults",
        "20",
        "--seed-base",
        "0xC0FFEE",
        "--json",
        j,
    ]);
    assert_eq!(exit_code(&o), 0, "{}", stderr(&o));
    assert!(stdout(&o).contains("faults: 20 injected"), "{}", stdout(&o));
    let doc = sg_json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
    let faults = doc.get("faults").expect("faults section");
    assert_eq!(faults.get("cases").and_then(|v| v.as_f64()), Some(20.0));
    assert_eq!(
        faults.get("seed_base").and_then(|v| v.as_str()),
        Some("0xc0ffee")
    );

    // A damaged manifest is corrupt data (3) with the lost components
    // named; a missing one is an I/O failure (4); bad flags are usage
    // errors (2).
    let mut bytes = std::fs::read(&manifest).unwrap();
    let n = bytes.len();
    bytes[n / 2] ^= 0x10;
    std::fs::write(&manifest, &bytes).unwrap();
    let o = sgtool(&["combine", "verify", m]);
    assert_eq!(exit_code(&o), 3, "{}", stderr(&o));
    assert!(stderr(&o).contains("damaged"), "{}", stderr(&o));

    assert_eq!(
        exit_code(&sgtool(&["combine", "verify", "/nonexistent"])),
        4
    );
    assert_eq!(exit_code(&sgtool(&["combine"])), 2);
    assert_eq!(exit_code(&sgtool(&["combine", "frobnicate"])), 2);
    assert_eq!(exit_code(&sgtool(&["combine", "run", "--level", "3"])), 2);
    assert_eq!(
        exit_code(&sgtool(&[
            "combine", "run", "--dims", "2", "--level", "3", "--policy", "hope"
        ])),
        2
    );

    std::fs::remove_file(&manifest).ok();
    std::fs::remove_file(&json).ok();
}

/// Write a BENCH trajectory file with `n` runs of the given p50s, in the
/// exact shape `sg_bench::trajectory::record_run` produces.
fn write_trajectory(dir: &std::path::Path, name: &str, p50s: &[f64]) {
    std::fs::create_dir_all(dir).unwrap();
    let runs: Vec<String> = p50s
        .iter()
        .enumerate()
        .map(|(i, p50)| {
            format!(
                r#"{{"provenance": {{"timestamp_utc": "2026-08-08T00:{i:02}:00Z",
                     "threads": 4, "git_sha": "test"}},
                    "metrics": {{"d5/compact/hierarchize_s":
                      {{"count": 5, "p50_s": {p50}, "p90_s": {p50}, "p99_s": {p50},
                        "min_s": {p50}, "max_s": {p50}}}}}}}"#
            )
        })
        .collect();
    std::fs::write(
        dir.join(format!("BENCH_{name}.json")),
        format!(
            "{{\"experiment\": \"{name}\", \"runs\": [{}]}}\n",
            runs.join(",")
        ),
    )
    .unwrap();
}

#[test]
fn gate_passes_clean_catches_regression_and_honors_baseline_override() {
    let dir = temp_path("gate-results");
    let results = dir.to_str().unwrap();

    // Eight statistically-quiet runs: within the band, exit 0.
    let clean: Vec<f64> = (0..8).map(|i| 1.0e-3 + (i % 3) as f64 * 1.0e-6).collect();
    write_trajectory(&dir, "fig9", &clean);
    let o = sgtool(&["gate", "fig9", "--results", results]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("perf gate passed"), "{}", stdout(&o));

    // A 10x-slower newest run breaches the band: exit 1 with a one-line
    // REGRESSION diagnosis naming the metric.
    let mut regressed = clean.clone();
    regressed.push(1.0e-2);
    write_trajectory(&dir, "fig9", &regressed);
    let json = dir.join("gate.json");
    let o = sgtool(&[
        "gate",
        "fig9",
        "--results",
        results,
        "--json",
        json.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&o), 1);
    assert!(
        stdout(&o).contains("REGRESSION d5/compact/hierarchize_s"),
        "{}",
        stdout(&o)
    );
    assert_eq!(stderr(&o).lines().count(), 1, "{}", stderr(&o));
    assert!(stderr(&o).contains("perf gate failed"), "{}", stderr(&o));
    let doc = sg_json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(doc["passed"], false);
    let exps = doc["experiments"].as_array().unwrap();
    assert_eq!(exps.len(), 1);

    // SG_GATE_BASELINE acknowledges the shift: reported but exit 0.
    let o = sgtool_env(
        &["gate", "fig9", "--results", results],
        &[("SG_GATE_BASELINE", "1")],
    );
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(
        stdout(&o).contains("SG_GATE_BASELINE set"),
        "{}",
        stdout(&o)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gate_short_history_passes_and_bad_inputs_use_pinned_exit_codes() {
    let dir = temp_path("gate-short");
    let results = dir.to_str().unwrap();

    // Under min-runs the gate must not engage, even on a wild newest run.
    write_trajectory(&dir, "young", &[1.0e-3, 1.0e-3, 5.0]);
    let o = sgtool(&["gate", "young", "--results", results]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("skip"), "{}", stdout(&o));

    // No experiment names: usage (2). Missing file: I/O (4). A
    // trajectory that is not valid JSON: corrupt data (3).
    assert_eq!(exit_code(&sgtool(&["gate"])), 2);
    assert_eq!(
        exit_code(&sgtool(&["gate", "absent", "--results", results])),
        4
    );
    std::fs::write(dir.join("BENCH_mangled.json"), "{\"runs\": [tru").unwrap();
    let o = sgtool(&["gate", "mangled", "--results", results]);
    assert_eq!(exit_code(&o), 3);
    assert_eq!(stderr(&o).lines().count(), 1, "{}", stderr(&o));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_from_summarizes_a_trace_and_rejects_malformed_ones() {
    let trace = temp_path("from-trace.json");
    let t = trace.to_str().unwrap();
    let o = sgtool(&[
        "profile", "--dims", "4", "--level", "4", "--points", "64", "--out", t,
    ]);
    assert!(o.status.success(), "{}", stderr(&o));

    // Summarizing the file we just wrote works offline.
    let o = sgtool(&["profile", "--from", t]);
    assert!(o.status.success(), "{}", stderr(&o));
    let s = stdout(&o);
    assert!(s.contains("events"), "{s}");
    assert!(s.contains("workload: d=4 level=4"), "{s}");

    // A truncated trace is a *usage* error — pinned exit 2 — with a
    // single-line diagnostic.
    let text = std::fs::read_to_string(&trace).unwrap();
    std::fs::write(&trace, &text[..text.len() / 2]).unwrap();
    let o = sgtool(&["profile", "--from", t]);
    assert_eq!(exit_code(&o), 2);
    let err = stderr(&o);
    assert_eq!(err.lines().count(), 1, "one-line diagnostic, got: {err}");
    assert!(err.starts_with("sgtool: malformed trace"), "{err}");

    // Valid JSON of the wrong shape is equally malformed.
    std::fs::write(&trace, "{\"not\": \"a trace\"}\n").unwrap();
    let o = sgtool(&["profile", "--from", t]);
    assert_eq!(exit_code(&o), 2);
    assert!(stderr(&o).contains("no traceEvents"), "{}", stderr(&o));

    // And a missing file stays an I/O error, not usage.
    assert_eq!(
        exit_code(&sgtool(&["profile", "--from", "/nonexistent/trace.json"])),
        4
    );
    std::fs::remove_file(&trace).ok();
}

#[test]
fn flight_records_a_self_describing_timeseries() {
    let out = temp_path("flight.json");
    let f = out.to_str().unwrap();
    let o = sgtool(&[
        "flight",
        "--dims",
        "5",
        "--level",
        "5",
        "--reps",
        "2",
        "--points",
        "512",
        "--interval-ms",
        "1",
        "--out",
        f,
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("frames"), "{}", stdout(&o));

    let doc = sg_json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    let schema = doc["schema"].as_array().expect("schema array");
    assert!(!schema.is_empty());
    for col in schema {
        assert!(col["name"].as_str().is_some(), "column without name");
        let kind = col["kind"].as_str().unwrap();
        assert!(
            ["counter", "span", "histogram"].contains(&kind),
            "unknown kind {kind}"
        );
        let unit = col["unit"].as_str().unwrap();
        assert!(
            ["count", "ns", "bytes"].contains(&unit),
            "unknown unit {unit}"
        );
    }
    // The workload's own instruments made it into the schema.
    assert!(
        schema
            .iter()
            .any(|c| c["name"].as_str() == Some("core.hierarchize.bytes_moved")),
        "hierarchize counter missing from schema"
    );
    let frames = doc["frames"].as_array().expect("frames array");
    assert!(!frames.is_empty(), "no frames recorded");
    for fr in frames {
        assert!(fr["t_ns"].as_f64().is_some());
        assert_eq!(fr["values"].as_array().unwrap().len(), schema.len());
    }
    assert!(doc["workload"]["interval_ms"].as_f64().is_some());
    assert!(!doc["provenance"].is_null());
    std::fs::remove_file(&out).ok();
}

#[test]
fn divergence_reports_per_group_data_with_correlation() {
    let out = temp_path("divergence.json");
    let f = out.to_str().unwrap();
    let o = sgtool(&[
        "divergence",
        "--dims",
        "4",
        "--level",
        "5",
        "--points",
        "256",
        "--machine",
        "tiny",
        "--top",
        "2",
        "--out",
        f,
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let s = stdout(&o);
    assert!(s.contains("correlation r="), "{s}");
    assert!(s.contains("top 2 divergent groups"), "{s}");

    let doc = sg_json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    for phase in ["hierarchize", "evaluate"] {
        let p = &doc[phase];
        let r = p["correlation"].as_f64().expect("correlation number");
        assert!((-1.0..=1.0).contains(&r), "{phase} r={r}");
        let groups = p["groups"].as_array().unwrap();
        assert_eq!(groups.len(), 5, "{phase}: one entry per level group");
        for g in groups {
            assert!(g["predicted_dram_lines"].as_f64().is_some());
            assert!(g["measured_ns"].as_f64().is_some());
            assert!(g["residual_ns"].as_f64().is_some());
        }
        // The measured half is real: the biggest group took nonzero time.
        assert!(
            groups[4]["measured_ns"].as_f64().unwrap() > 0.0,
            "{phase}: top group unmeasured"
        );
    }
    assert!(!doc["top_divergent"].as_array().unwrap().is_empty());
    // Unknown machines are usage errors.
    assert_eq!(
        exit_code(&sgtool(&["divergence", "--machine", "cray-1"])),
        2
    );
    std::fs::remove_file(&out).ok();
}
