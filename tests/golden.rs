//! Golden-value tests: hand-computed constants from the paper (Sec. 4,
//! Table 1 scales) pinned as literals, so a regression in
//! `combinatorics.rs`, `iter.rs`, or `level.rs` fails loudly instead of
//! silently shifting every derived quantity.

use sg_core::bijection::GridIndexer;
use sg_core::combinatorics::{binomial, sparse_grid_points, subspace_count};
use sg_core::iter::LevelIter;
use sg_core::level::GridSpec;

/// N(d, L) = Σ_{s<L} C(d−1+s, d−1)·2^s — the closed form of paper Eq. 1,
/// against independently hand-computed values.
#[test]
fn point_counts_match_hand_computed_values() {
    // (d, L, N(d, L))
    const GOLDEN: &[(usize, usize, u64)] = &[
        // d = 1 degenerates to a full 1-d grid: 2^L − 1.
        (1, 1, 1),
        (1, 5, 31),
        (1, 7, 127),
        // d = 2: 1, 5, 17, 49, 129, 321, 769 …
        (2, 2, 5),
        (2, 3, 17),
        (2, 4, 49),
        (2, 5, 129),
        (2, 6, 321),
        (2, 7, 769),
        // d = 3: 1, 7, 31, 111, 351, 1023 …
        (3, 2, 7),
        (3, 3, 31),
        (3, 4, 111),
        (3, 5, 351),
        (3, 6, 1023),
        // d = 4 and d = 5 (Table 1 mid-range sizes).
        (4, 4, 209),
        (4, 5, 769),
        (4, 6, 2561),
        (5, 4, 351),
        (5, 5, 1471),
        (5, 6, 5503),
        // The paper's big grids: d = 10.
        (10, 5, 13_441),
        (10, 11, 127_574_017),
    ];
    for &(d, levels, expect) in GOLDEN {
        assert_eq!(
            sparse_grid_points(d, levels),
            expect,
            "N({d}, {levels}) wrong"
        );
        assert_eq!(
            GridSpec::new(d, levels).num_points(),
            expect,
            "GridSpec::num_points({d}, {levels}) disagrees with closed form"
        );
    }
}

/// The binomial lookup (the paper's `binmat`) against textbook values.
#[test]
fn binomials_match_pascals_triangle() {
    const GOLDEN: &[(u64, u64, u64)] = &[
        (0, 0, 1),
        (4, 2, 6),
        (9, 0, 1),
        (9, 9, 1),
        (10, 9, 10),
        (12, 9, 220),
        (13, 9, 715),
        (19, 9, 92_378),
        (52, 5, 2_598_960),
    ];
    for &(n, k, expect) in GOLDEN {
        assert_eq!(binomial(n, k), expect, "C({n}, {k}) wrong");
    }
}

/// |L_n^d| = C(d−1+n, d−1): the number of subspaces per level group.
#[test]
fn subspace_counts_match_hand_computed_values() {
    const GOLDEN: &[(usize, usize, u64)] = &[
        (1, 0, 1),
        (1, 6, 1),
        (2, 3, 4),
        (3, 0, 1),
        (3, 1, 3),
        (3, 2, 6),
        (3, 3, 10),
        (3, 4, 15),
        (5, 4, 70),
        (10, 10, 92_378),
    ];
    for &(d, n, expect) in GOLDEN {
        assert_eq!(subspace_count(d, n), expect, "|L_{n}^{d}| wrong");
    }
}

/// `subspaceidx` ranks (paper Alg. 3/4 enumeration order) for every
/// composition of small level groups, written out by hand.
#[test]
fn subspace_ranks_match_enumeration_order() {
    // d = 3, n = 2 — the example order from the paper's Alg. 4 walk-through:
    // (2,0,0), (1,1,0), (0,2,0), (1,0,1), (0,1,1), (0,0,2).
    let expect_d3_n2: [&[u8]; 6] = [
        &[2, 0, 0],
        &[1, 1, 0],
        &[0, 2, 0],
        &[1, 0, 1],
        &[0, 1, 1],
        &[0, 0, 2],
    ];
    let got: Vec<_> = LevelIter::new(3, 2).collect();
    assert_eq!(got.len(), expect_d3_n2.len());
    for (k, (g, e)) in got.iter().zip(expect_d3_n2).enumerate() {
        assert_eq!(g.as_slice(), e, "d=3 n=2 rank {k}");
    }

    // d = 2, n = 3: first component drains into the second.
    let expect_d2_n3: [&[u8]; 4] = [&[3, 0], &[2, 1], &[1, 2], &[0, 3]];
    let got: Vec<_> = LevelIter::new(2, 3).collect();
    for (k, (g, e)) in got.iter().zip(expect_d2_n3).enumerate() {
        assert_eq!(g.as_slice(), e, "d=2 n=3 rank {k}");
    }

    // subspace_rank inverts the enumeration: rank of each vector is its
    // position.
    let ix = GridIndexer::new(GridSpec::new(3, 3));
    for (k, l) in expect_d3_n2.iter().enumerate() {
        assert_eq!(ix.subspace_rank(l), k as u64, "subspaceidx({l:?})");
    }
}

/// Full `gp2idx` values for the d = 2, L = 3 grid (17 points), worked out
/// on paper from index1/index2/index3 of Alg. 5.
#[test]
fn gp2idx_matches_hand_computed_layout() {
    let spec = GridSpec::new(2, 3);
    assert_eq!(spec.num_points(), 17);
    let ix = GridIndexer::new(spec);

    // (level vector, index vector, linear index)
    const GOLDEN: &[([u8; 2], [u32; 2], u64)] = &[
        // group n=0: the single centre point.
        ([0, 0], [1, 1], 0),
        // group n=1 (offset 1): subspace (1,0) then (0,1).
        ([1, 0], [1, 1], 1),
        ([1, 0], [3, 1], 2),
        ([0, 1], [1, 1], 3),
        ([0, 1], [1, 3], 4),
        // group n=2 (offset 5): subspaces (2,0), (1,1), (0,2), 4 points each.
        ([2, 0], [1, 1], 5),
        ([2, 0], [3, 1], 6),
        ([2, 0], [5, 1], 7),
        ([2, 0], [7, 1], 8),
        ([1, 1], [1, 1], 9),
        ([1, 1], [1, 3], 10),
        ([1, 1], [3, 1], 11),
        ([1, 1], [3, 3], 12),
        ([0, 2], [1, 1], 13),
        ([0, 2], [1, 3], 14),
        ([0, 2], [1, 5], 15),
        ([0, 2], [1, 7], 16),
    ];
    for &(l, i, expect) in GOLDEN {
        assert_eq!(ix.gp2idx(&l, &i), expect, "gp2idx({l:?}, {i:?})");
        let (l2, i2) = ix.idx2gp_vec(expect);
        assert_eq!((l2.as_slice(), i2.as_slice()), (&l[..], &i[..]));
    }
}

/// The paper's headline capacity claim: d = 10, level 11 has exactly
/// 127,574,017 points, and the compact layout stores them with zero
/// structural overhead (one value per point, nothing else).
#[test]
fn paper_scale_grid_is_exactly_sized() {
    let spec = GridSpec::new(10, 11);
    assert_eq!(spec.num_points(), 127_574_017);
    // Level-group offsets (index3 of Alg. 5) are the partial sums of
    // C(9+s, 9)·2^s; spot-check the final group.
    let last_group: u64 = subspace_count(10, 10) * (1 << 10);
    assert_eq!(last_group, 92_378 << 10);
    assert_eq!(
        sparse_grid_points(10, 10) + last_group,
        sparse_grid_points(10, 11)
    );
}
