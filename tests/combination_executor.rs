//! Scheduling-determinism and fault-injection contract for the
//! combination-technique executor.
//!
//! The executor promises that its output is a pure function of (shape,
//! function, policy) — never of the thread count, the task completion
//! order, or which faults happened to be survivable. These tests pin
//! that promise from outside the crate:
//!
//! * bitwise identical runs across `SG_PAR_THREADS` ∈ {1, 2, 8},
//! * bitwise identical component sets across seeded shuffled task
//!   completion orders (simulating an arbitrary scheduler),
//! * the fault-injection harness stays clean under both recovery
//!   policies, in this crate's telemetry-on build as well as sg-fuzz's
//!   default build.

use sg_combination::{
    CombinationExecutor, CombinationGrid, ExecutorConfig, RecoveryPolicy, RunOutcome,
};
use sg_core::level::GridSpec;
use sg_prop::Rng;

fn test_fn(x: &[f64]) -> f64 {
    x.iter()
        .enumerate()
        .map(|(t, &v)| (1.0 + 0.45 * t as f64) * v * (1.0 - v))
        .product::<f64>()
        + (x.iter().sum::<f64>() * 2.0).cos()
}

fn grids_bitwise_equal(a: &CombinationGrid<f64>, b: &CombinationGrid<f64>) -> bool {
    a.components().len() == b.components().len()
        && a.components().iter().zip(b.components()).all(|(x, y)| {
            x.coefficient == y.coefficient
                && x.grid.levels() == y.grid.levels()
                && x.grid.values() == y.grid.values()
        })
}

/// Fisher–Yates over the task indices, seeded.
fn shuffled_order(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.usize_in(0..=i);
        order.swap(i, j);
    }
    order
}

#[test]
fn runs_are_bitwise_identical_across_thread_counts() {
    let restore = sg_par::num_threads();
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        sg_par::set_num_threads(threads);
        for spec in [
            GridSpec::new(2, 4),
            GridSpec::new(3, 4),
            GridSpec::new(4, 3),
        ] {
            let run = CombinationExecutor::new(spec).run(test_fn).unwrap();
            assert_eq!(run.outcome, RunOutcome::Clean, "threads={threads}");
            runs.push((threads, spec, run));
        }
    }
    sg_par::set_num_threads(restore);
    // Every thread count must produce the same bits for the same shape.
    for (threads, spec, run) in &runs {
        let (_, _, reference) = runs
            .iter()
            .find(|(t, s, _)| *t == 1 && s == spec)
            .expect("single-threaded reference exists");
        assert!(
            grids_bitwise_equal(&run.grid, &reference.grid),
            "threads={threads} spec d={} levels={} differs from single-threaded bits",
            spec.dim(),
            spec.levels()
        );
    }
}

#[test]
fn component_sets_are_bitwise_identical_across_completion_orders() {
    let spec = GridSpec::new(3, 4);
    let exec = CombinationExecutor::new(spec);
    let reference = exec.compute_components(test_fn).unwrap();
    let n = reference.len();
    let mut rng = Rng::new(0xD157_08D3 ^ 0xFFFF);
    for round in 0..8 {
        let order = shuffled_order(&mut rng, n);
        let shuffled = exec
            .compute_components_faulty(test_fn, Default::default(), Some(&order))
            .unwrap();
        for (k, (a, b)) in shuffled.iter().zip(&reference).enumerate() {
            assert_eq!(
                a.values(),
                b.values(),
                "round {round}: component {k} depends on completion order {order:?}"
            );
        }
    }
}

#[test]
fn recovered_runs_are_bitwise_identical_across_thread_counts_under_loss() {
    // Recompute recovery re-samples on the caller thread; the surviving
    // payloads came through the manifest. Neither source may depend on
    // the width of the pool that originally computed the set.
    let spec = GridSpec::new(3, 3);
    let exec = CombinationExecutor::new(spec);
    let restore = sg_par::num_threads();
    let mut recovered = Vec::new();
    for threads in [1usize, 2, 8] {
        sg_par::set_num_threads(threads);
        let components = exec.compute_components(test_fn).unwrap();
        let mut sink = sg_io::MemorySink::new();
        exec.checkpoint(&components, &mut sink, Some(2)).unwrap();
        let bytes = sink.into_published().unwrap();
        let run = exec.recover_run(&bytes, test_fn).unwrap();
        assert_eq!(
            run.outcome,
            RunOutcome::Recomputed {
                components: vec![2]
            },
            "threads={threads}"
        );
        recovered.push(run);
    }
    sg_par::set_num_threads(restore);
    for run in &recovered[1..] {
        assert!(grids_bitwise_equal(&run.grid, &recovered[0].grid));
    }
}

#[test]
fn fault_harness_is_clean_in_the_telemetry_build() {
    // sg-apps builds sg-combination and sg-io with telemetry on; the
    // counters and spans must not perturb recovery behaviour.
    let report = sg_fuzz::run_combination_faults(0x7E1E_F417, 60);
    assert!(report.clean(), "{:#?}", report.violations);
    assert_eq!(report.cases, 60);
    assert!(report.per_policy.0 > 0 && report.per_policy.1 > 0);
}

#[test]
fn reweight_coefficients_still_reproduce_constants_after_loss() {
    // Whatever the executor drops, the adjusted combination must keep
    // Σ c = 1 — constants are reproduced exactly or the reweight is
    // rejected as infeasible.
    let spec = GridSpec::new(3, 3);
    let exec = CombinationExecutor::with_config(
        spec,
        ExecutorConfig {
            policy: RecoveryPolicy::Reweight,
            ..ExecutorConfig::default()
        },
    );
    let components = exec.compute_components(test_fn).unwrap();
    for k in 0..exec.tasks().len() {
        let mut sink = sg_io::MemorySink::new();
        exec.checkpoint(&components, &mut sink, Some(k)).unwrap();
        let bytes = sink.into_published().unwrap();
        match exec.recover_run(&bytes, test_fn) {
            Ok(run) => {
                let total: i64 = run.grid.components().iter().map(|c| c.coefficient).sum();
                assert_eq!(total, 1, "k={k}");
            }
            Err(sg_core::error::SgError::Corrupt(_)) => {} // infeasible is typed
            Err(other) => panic!("k={k}: unexpected error class {other}"),
        }
    }
}
