//! Serving-layer resilience, end to end over the wire: request
//! deadlines, graceful drain, degraded-model serving with background
//! repair, idle-connection reaping, client stall detection, and the
//! pinned serve-chaos canary corpus.
//!
//! Everything here drives a live in-process [`sg_serve::Server`] over
//! real TCP loopback sockets — the same stack `sgd` runs — so the
//! contracts hold where they matter: on the wire, not just in the
//! engine.

use sg_core::functions::TestFunction;
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::hierarchize;
use sg_core::level::GridSpec;
use sg_serve::{Client, Engine, Fleet, ServeConfig, ServeError, Server};
use std::io::Read;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "sg-serve-resilience-{}-{tag}.sgcs",
        std::process::id()
    ))
}

/// Snapshot of the gaussian test function (the function matters: the
/// degraded-repair drill re-samples it to restore lost groups bitwise).
fn gaussian_snapshot(
    tag: &str,
    dim: usize,
    level: usize,
) -> (std::path::PathBuf, CompactGrid<f64>) {
    let mut g = CompactGrid::from_fn(GridSpec::new(dim, level), |x| {
        TestFunction::Gaussian.eval(x)
    });
    hierarchize(&mut g);
    let path = temp_path(tag);
    sg_io::write_snapshot_file(&g, &path, "resilience-test").unwrap();
    (path, g)
}

fn start_server(cfg: ServeConfig, tag: &str) -> (Arc<Server>, String, std::path::PathBuf) {
    let (path, _) = gaussian_snapshot(tag, 2, 4);
    let fleet = Fleet::new(4);
    fleet.load("m", &path).unwrap();
    let engine = Engine::new(fleet, cfg);
    let server = Server::start(engine, Some("127.0.0.1:0"), None).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    (server, addr, path)
}

/// A request whose deadline passes while it waits behind heavy batches
/// must come back as a typed `deadline_exceeded`, never a stale answer.
#[test]
fn expired_deadline_is_typed_over_the_wire() {
    // A big grid makes each 16384-point batch take real time, so a
    // 1 ms deadline queued behind several of them reliably expires.
    let mut g = CompactGrid::from_fn(GridSpec::new(3, 7), |x| {
        (4.0 * x[0]).sin() + x[1] * x[2] + (x[0] * x[1]).cos()
    });
    hierarchize(&mut g);
    let path = temp_path("deadline");
    sg_io::write_snapshot_file(&g, &path, "resilience-test").unwrap();
    let fleet = Fleet::new(4);
    fleet.load("m", &path).unwrap();
    // Force inline (single-threaded) evaluation and allow quarter-million
    // point jobs so each batch holds the executor for a deterministic
    // stretch even in release builds — the probe's 1 ms deadline must
    // expire in the queue, not race the sg-par pool.
    let cfg = ServeConfig {
        par_min_points: usize::MAX,
        batch_max_points: 1 << 18,
        ..ServeConfig::default()
    };
    let server = Server::start(Engine::new(fleet, cfg), Some("127.0.0.1:0"), None).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();

    // First, the happy path: a generous deadline is met and flagged
    // neither degraded nor expired.
    let mut probe = Client::connect_tcp(&addr).unwrap();
    let mut out = Vec::new();
    let degraded = probe
        .eval_deadline_into("m", 3, 60_000, &[0.25, 0.5, 0.75], &mut out)
        .unwrap();
    assert!(!degraded);
    assert_eq!(out.len(), 1);

    // Then the contended path, retried to absorb scheduler noise: six
    // loaders each park a quarter-million-point batch in the queue, and
    // a 1 ms deadline submitted behind them expires before the executor
    // gets to it.
    let mut saw_expiry = false;
    'attempts: for _ in 0..10 {
        // Optimized evaluation chews through a batch ~25x faster, so
        // release builds need proportionally heavier loads to hold the
        // executor past the probe's deadline.
        let pts: usize = if cfg!(debug_assertions) {
            1 << 15
        } else {
            1 << 18
        };
        let loaders: Vec<_> = (0..6)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut c = Client::connect_tcp(&addr).unwrap();
                    let xs: Vec<f64> = (0..3 * pts)
                        .map(|j| (((i * 31 + j) as f64) * 0.617_283).fract() * 0.998 + 0.001)
                        .collect();
                    let mut out = Vec::new();
                    c.eval_into("m", 3, &xs, &mut out).unwrap();
                })
            })
            .collect();
        // Give the loaders a moment to be admitted ahead of us.
        std::thread::sleep(Duration::from_millis(2));
        let r = probe.eval_deadline_into("m", 3, 1, &[0.5, 0.5, 0.5], &mut out);
        for l in loaders {
            l.join().unwrap();
        }
        match r {
            Err(ServeError::DeadlineExceeded) => {
                saw_expiry = true;
                break 'attempts;
            }
            Ok(_) => {}                       // queue was empty fast — retry
            Err(ServeError::Overloaded) => {} // shed at admission — retry
            Err(other) => panic!("expected deadline_exceeded, got {other:?}"),
        }
    }
    assert!(
        saw_expiry,
        "no queued request ever expired across 10 contended rounds"
    );

    // The connection survives the typed expiry and serves again.
    assert!(!probe
        .eval_deadline_into("m", 3, 60_000, &[0.1, 0.2, 0.3], &mut out)
        .unwrap());
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Drain under live traffic: every response accepted before the drain
/// is delivered (bitwise-correct), every request after it is rejected
/// typed, and the drain completes inside its budget.
#[test]
fn graceful_drain_loses_no_accepted_responses() {
    let (server, addr, path) = start_server(ServeConfig::default(), "drain");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let oracle = {
        let bytes = std::fs::read(&path).unwrap();
        sg_io::read_snapshot::<f64>(&bytes).unwrap()
    };

    let workers: Vec<_> = (0..6)
        .map(|w| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let oracle = oracle.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect_tcp(&addr).unwrap();
                let mut ok = 0u64;
                let mut typed_rejections = 0u64;
                let mut out = Vec::new();
                let mut i = 0u64;
                loop {
                    let x = [
                        (((w * 131 + 7) as f64 + i as f64) * 0.381_966).fract(),
                        (((w * 17 + 3) as f64 + i as f64) * 0.618_034).fract(),
                    ];
                    match c.eval_into("m", 2, &x, &mut out) {
                        Ok(_) => {
                            // An accepted response must be the real
                            // answer — a drain may reject, never lie.
                            let want = sg_core::evaluate::evaluate(&oracle, &x);
                            assert_eq!(
                                out[0].to_bits(),
                                want.to_bits(),
                                "accepted response diverged during drain"
                            );
                            ok += 1;
                        }
                        Err(
                            ServeError::ShuttingDown | ServeError::Io(_) | ServeError::TimedOut(_),
                        ) => {
                            typed_rejections += 1;
                            break;
                        }
                        Err(other) => panic!("untyped drain failure: {other:?}"),
                    }
                    i += 1;
                    if stop.load(std::sync::atomic::Ordering::Relaxed) && i > 10_000 {
                        break; // safety valve; drain should end us first
                    }
                }
                (ok, typed_rejections)
            })
        })
        .collect();

    // Let traffic flow, then pull the plug mid-stream.
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let clean = server.drain(Duration::from_secs(10));
    assert!(clean, "drain was forced despite a 10s budget");

    let mut total_ok = 0u64;
    let mut total_rejected = 0u64;
    for wkr in workers {
        let (ok, rej) = wkr.join().unwrap();
        total_ok += ok;
        total_rejected += rej;
    }
    assert!(total_ok > 0, "no request succeeded before the drain");
    assert!(
        total_rejected > 0,
        "no worker observed the drain — traffic ended too early"
    );
    // Post-drain, new connections are refused or immediately closed.
    assert!(
        Client::connect_tcp(&addr)
            .and_then(|mut c| c.eval("m", 2, &[0.5, 0.5]))
            .is_err(),
        "a drained server accepted new work"
    );
    std::fs::remove_file(&path).ok();
}

/// Damaged snapshot → degraded load (flagged on the wire and in stats)
/// → values match the salvage oracle exactly → `repair` restores
/// bitwise-clean serving, all over the control plane.
#[test]
fn degraded_serving_is_flagged_and_repair_restores_bitwise() {
    let (path, clean_grid) = gaussian_snapshot("degraded", 2, 4);
    let mut bytes = std::fs::read(&path).unwrap();
    let bounds = sg_io::section_boundaries(&bytes).unwrap();
    bytes[bounds[2] + 9] ^= 0x40; // one flipped bit in the surplus section
    std::fs::write(&path, &bytes).unwrap();
    let salvage = sg_io::recover_snapshot::<f64>(&bytes).unwrap();
    assert!(
        !salvage.grid.is_complete(),
        "fixture must actually be damaged"
    );

    let fleet = Fleet::new(4);
    let engine = Engine::new(fleet, ServeConfig::default());
    let server = Server::start(engine, Some("127.0.0.1:0"), None).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    let mut client = Client::connect_tcp(&addr).unwrap();

    // Load the damaged snapshot with a repair function: degraded, with
    // the lost groups enumerated.
    let reply = client
        .ctrl(&sg_json::json!({
            "cmd": "load",
            "name": "m",
            "path": path.display().to_string(),
            "repair_function": "gaussian",
        }))
        .unwrap();
    assert_eq!(reply.get("degraded").and_then(|v| v.as_bool()), Some(true));
    let lost = reply.get("lost_groups").and_then(|v| v.as_array()).unwrap();
    assert!(!lost.is_empty());

    // Degraded serving: flagged on the wire, values exactly the salvage
    // interpolant (zero-filled lost groups), not garbage.
    let xs = [0.25, 0.5, 0.75, 0.125, 0.375, 0.875];
    let mut out = Vec::new();
    let degraded = client.eval_into("m", 2, &xs, &mut out).unwrap();
    assert!(degraded, "degraded serve must be flagged on the wire");
    for (point, got) in xs.chunks(2).zip(&out) {
        let want = salvage.grid.evaluate(point);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "degraded value diverged at {point:?}"
        );
    }
    let stats = client.stats().unwrap();
    let model = &stats.get("models").and_then(|v| v.as_array()).unwrap()[0];
    assert_eq!(model.get("degraded").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        stats.get("degraded_models").and_then(|v| v.as_u64()),
        Some(1)
    );

    // The background repairer sweeps every 200 ms; wait for the hot
    // swap rather than forcing it, so the drill covers the real path.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = client
            .ctrl(&sg_json::json!({"cmd": "repair", "name": "m"}))
            .unwrap();
        let stats = client.stats().unwrap();
        let model = &stats.get("models").and_then(|v| v.as_array()).unwrap()[0];
        if model.get("degraded").and_then(|v| v.as_bool()) == Some(false) {
            // Whether this explicit call or the sweeper won the race,
            // the reply must agree the model needs no further repair.
            assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true));
            break;
        }
        assert!(Instant::now() < deadline, "repair never completed");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Post-repair serving is unflagged and bitwise-identical to the
    // clean model.
    let degraded = client.eval_into("m", 2, &xs, &mut out).unwrap();
    assert!(!degraded);
    for (point, got) in xs.chunks(2).zip(&out) {
        let want = sg_core::evaluate::evaluate(&clean_grid, point);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "repaired value diverged at {point:?}"
        );
    }
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// A connection that goes quiet between frames is reaped after the idle
/// limit; the server closes it instead of leaking the thread.
#[test]
fn idle_connections_are_reaped() {
    let cfg = ServeConfig {
        idle_timeout_ms: 60,
        ..ServeConfig::default()
    };
    let (server, addr, path) = start_server(cfg, "idle");
    let start = Instant::now();
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 16];
    // Send nothing: the read unblocks with EOF once the reaper fires.
    let n = s.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "expected EOF from the idle reaper, got {n} bytes");
    let waited = start.elapsed();
    assert!(
        waited >= Duration::from_millis(50) && waited < Duration::from_secs(4),
        "idle reap took {waited:?}, limit was 60ms"
    );
    // An active client on the same server is untouched.
    let mut c = Client::connect_tcp(&addr).unwrap();
    assert_eq!(c.eval("m", 2, &[0.5, 0.5]).unwrap().len(), 1);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// A server that accepts but never replies must surface as a typed
/// `timed_out` on the client within its stall limit — not a hang.
#[test]
fn client_times_out_against_a_stalled_server() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let sink = std::thread::spawn(move || {
        // Accept, read forever, never write a byte.
        let (mut s, _) = listener.accept().unwrap();
        let mut buf = [0u8; 1024];
        while let Ok(n) = s.read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    });
    let mut client = Client::connect_tcp(&addr).unwrap();
    client.set_io_timeout(Duration::from_millis(100));
    let start = Instant::now();
    match client.eval("m", 2, &[0.5, 0.5]) {
        Err(ServeError::TimedOut(_)) => {}
        other => panic!("expected timed_out against a silent server, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "stall detection took {:?}",
        start.elapsed()
    );
    drop(client);
    sink.join().unwrap();
}

/// Replay the pinned chaos corpus (`tests/corpus/serve_chaos_seeds.txt`)
/// against a live daemon: every canary must stay inside the
/// detect-or-recover contract.
#[test]
fn chaos_canary_corpus_replays_clean() {
    use sg_fuzz::servechaos::{run_case, ChaosClass, ChaosFixture};
    let corpus = include_str!("corpus/serve_chaos_seeds.txt");
    let fixture = ChaosFixture::start(0x5EED_CA05).unwrap();
    let mut replayed = 0usize;
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (class_name, seed_hex) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("malformed corpus line {line:?}"));
        let class = *ChaosClass::ALL
            .iter()
            .find(|c| c.name() == class_name)
            .unwrap_or_else(|| panic!("unknown chaos class {class_name:?}"));
        let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16)
            .unwrap_or_else(|e| panic!("bad seed in line {line:?}: {e}"));
        if let Err(why) = run_case(&fixture, class, seed) {
            panic!("canary {class_name} {seed_hex} violated the contract: {why}");
        }
        replayed += 1;
    }
    assert!(replayed >= 9, "corpus shrank to {replayed} canaries");
    fixture.finish().unwrap();
}
