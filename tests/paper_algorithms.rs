#![allow(clippy::needless_range_loop)] // literal transcriptions of the paper pseudocode index arrays directly

//! Literal transcriptions of the paper's pseudocode, checked against the
//! library — the most direct conformance evidence the reproduction can
//! give. Each test implements one algorithm exactly as printed (modulo
//! Rust syntax) and compares its output with the crate implementation.

use sg_core::bijection::{gp2idx_literal, GridIndexer};
use sg_core::evaluate::evaluate;
use sg_core::grid::CompactGrid;
use sg_core::hierarchize::hierarchize;
use sg_core::iter::{for_each_point, LevelIter};
use sg_core::level::{GridSpec, Level};

// ---------------------------------------------------------------- Alg. 1

/// Paper Alg. 1: 1-d recursive hierarchization over a binary tree of
/// nodal values. `tree[l][k]` is the k-th node of level l (zero-based
/// levels, k = (i−1)/2).
fn alg1_hierarchize1d(
    tree: &mut Vec<Vec<f64>>,
    l: usize,
    k: usize,
    left_val: f64,
    right_val: f64,
    max_level: usize,
) {
    let value = tree[l][k];
    if l < max_level {
        alg1_hierarchize1d(tree, l + 1, 2 * k, left_val, value, max_level);
        alg1_hierarchize1d(tree, l + 1, 2 * k + 1, value, right_val, max_level);
    }
    tree[l][k] = value - (left_val + right_val) / 2.0;
}

#[test]
fn alg1_matches_library_hierarchization_in_1d() {
    let levels = 6usize;
    let f = |x: f64| (x * 4.2).sin() + x;
    // Nodal values in tree layout.
    let mut tree: Vec<Vec<f64>> = (0..levels)
        .map(|l| {
            (0..(1usize << l))
                .map(|k| f((2 * k + 1) as f64 / (1u64 << (l + 1)) as f64))
                .collect()
        })
        .collect();
    alg1_hierarchize1d(&mut tree, 0, 0, 0.0, 0.0, levels - 1);

    let mut grid = CompactGrid::<f64>::from_fn(GridSpec::new(1, levels), |x| f(x[0]));
    hierarchize(&mut grid);
    for l in 0..levels {
        for k in 0..(1usize << l) {
            let i = (2 * k + 1) as u32;
            let lib = grid.get(&[l as Level], &[i]);
            assert!(
                (tree[l][k] - lib).abs() < 1e-14,
                "surplus mismatch at l={l}, i={i}: alg1 {} vs lib {lib}",
                tree[l][k]
            );
        }
    }
}

// ---------------------------------------------------------------- Alg. 2

/// Paper Alg. 2: 1-d recursive evaluation descending towards x.
fn alg2_evaluate1d(tree: &[Vec<f64>], l: usize, k: usize, x: f64, max_level: usize) -> f64 {
    let centre = (2 * k + 1) as f64 / (1u64 << (l + 1)) as f64;
    let h = 1.0 / (1u64 << (l + 1)) as f64;
    let basis = (1.0 - ((x - centre) / h).abs()).max(0.0);
    let mut res = basis * tree[l][k];
    if l < max_level {
        if x < centre {
            res += alg2_evaluate1d(tree, l + 1, 2 * k, x, max_level);
        } else {
            res += alg2_evaluate1d(tree, l + 1, 2 * k + 1, x, max_level);
        }
    }
    res
}

#[test]
fn alg2_matches_library_evaluation_in_1d() {
    let levels = 6usize;
    let f = |x: f64| x * (1.0 - x) * (2.0 + (9.0 * x).cos());
    let mut grid = CompactGrid::<f64>::from_fn(GridSpec::new(1, levels), |x| f(x[0]));
    hierarchize(&mut grid);
    // Copy the surpluses into the tree layout.
    let tree: Vec<Vec<f64>> = (0..levels)
        .map(|l| {
            (0..(1usize << l))
                .map(|k| grid.get(&[l as Level], &[(2 * k + 1) as u32]))
                .collect()
        })
        .collect();
    for step in 0..=50 {
        let x = step as f64 / 50.0;
        let a = alg2_evaluate1d(&tree, 0, 0, x, levels - 1);
        let b = evaluate(&grid, &[x]);
        assert!((a - b).abs() < 1e-13, "x={x}: alg2 {a} vs lib {b}");
    }
}

// ---------------------------------------------------------------- Alg. 3

/// Paper Alg. 3: recursive level-vector enumeration,
/// `enumerate(d, n) = concat(enumerate(d−1, n−k), k)` for `k = 0..n`.
fn alg3_enumerate(d: usize, n: usize) -> Vec<Vec<Level>> {
    if d == 1 {
        return vec![vec![n as Level]];
    }
    let mut out = Vec::new();
    for k in 0..=n {
        for mut prefix in alg3_enumerate(d - 1, n - k) {
            prefix.push(k as Level);
            out.push(prefix);
        }
    }
    out
}

#[test]
fn alg3_matches_the_iterative_next_function() {
    for d in 1..=6 {
        for n in 0..=7 {
            let recursive = alg3_enumerate(d, n);
            let iterative: Vec<_> = LevelIter::new(d, n).collect();
            assert_eq!(recursive, iterative, "d={d} n={n}");
        }
    }
}

// ---------------------------------------------------------------- Alg. 4

/// Paper Alg. 4 verbatim: the iterator increment `next(l)`.
fn alg4_next(l: &[Level]) -> Vec<Level> {
    let mut r = l.to_vec();
    let mut t = 0usize;
    while l[t] == 0 {
        t += 1;
    }
    r[t] = 0;
    r[0] = l[t] - 1;
    r[t + 1] += 1;
    r
}

#[test]
fn alg4_matches_library_next_level() {
    for d in 2..=5 {
        for n in 1..=6 {
            let mut lib = vec![0 as Level; d];
            sg_core::iter::first_level(n, &mut lib);
            loop {
                let mut succ = lib.clone();
                if !sg_core::iter::next_level(&mut succ) {
                    break;
                }
                assert_eq!(succ, alg4_next(&lib), "after {lib:?}");
                lib = succ;
            }
        }
    }
}

// ---------------------------------------------------------------- Alg. 5

#[test]
fn alg5_literal_gp2idx_agrees_with_table_driven_indexer() {
    for (d, levels) in [(2usize, 6usize), (3, 5), (5, 4), (8, 3)] {
        let spec = GridSpec::new(d, levels);
        let ix = GridIndexer::new(spec);
        for_each_point(&spec, |idx, l, i| {
            assert_eq!(gp2idx_literal(&spec, l, i), idx);
            assert_eq!(ix.gp2idx(l, i), idx);
        });
    }
}

// ---------------------------------------------------- Eq. 2 and headline

#[test]
fn equation_2_subspace_count() {
    // S_n^d = C(d−1+n, d−1), paper Eq. 2.
    for d in 1..=8usize {
        for n in 0..=8usize {
            let brute = alg3_enumerate(d, n).len() as u64;
            assert_eq!(brute, sg_core::combinatorics::subspace_count(d, n));
        }
    }
}

#[test]
fn paper_headline_grid_sizes() {
    // §6: "The number of points in the sparse grids used in our tests was
    // in the range of [2047, 127574017], corresponding to level 11 sparse
    // grids with dimensionalities between 1 and 10."
    assert_eq!(sg_core::combinatorics::sparse_grid_points(1, 11), 2047);
    assert_eq!(
        sg_core::combinatorics::sparse_grid_points(10, 11),
        127_574_017
    );
}
