//! The paper's motivating application (Fig. 1): interactive exploration
//! of multi-dimensional simulation data.
//!
//! A "simulation" produces a 5-dimensional field; we compress it into the
//! compact sparse grid format, serialize it (the storage hop of Fig. 1),
//! then a "visualization client" deserializes and renders 2-d slices by
//! batch-decompressing a pixel grid — the latency-critical step the paper
//! optimizes.
//!
//! Run with: `cargo run --release -p sg-apps --example interactive_exploration`

use sg_core::prelude::*;
use std::time::Instant;

/// The "simulation output": a travelling Gaussian pulse whose centre
/// moves with two parameters (think time and viscosity).
fn simulation_field(x: &[f64]) -> f64 {
    let (sx, sy, t, nu, amp) = (x[0], x[1], x[2], x[3], x[4]);
    let cx = 0.3 + 0.4 * t;
    let cy = 0.5 + 0.2 * (std::f64::consts::TAU * t).sin();
    let width = 0.02 + 0.1 * nu;
    let r2 = (sx - cx).powi(2) + (sy - cy).powi(2);
    (0.5 + 0.5 * amp) * (-r2 / width).exp() * (sx * (1.0 - sx) * sy * (1.0 - sy) * 16.0)
}

fn main() {
    // --- Simulation + compression (offline, Fig. 1 left).
    let spec = GridSpec::new(5, 8);
    println!(
        "compressing a 5-d field on {} sparse grid points …",
        spec.num_points()
    );
    let t0 = Instant::now();
    let mut grid = CompactGrid::from_fn_parallel(spec, simulation_field);
    hierarchize_parallel(&mut grid);
    println!("  sampled + hierarchized in {:.2?}", t0.elapsed());

    // --- Storage hop: the compact format is just spec + coefficients.
    let blob = sg_io::encode(&grid);
    println!(
        "  stored blob: {} bytes for {} coefficients",
        blob.len(),
        grid.len()
    );
    let grid: CompactGrid<f64> = sg_io::decode(&blob).expect("deserialize");

    // --- Visualization client (online, Fig. 1 right): render 2-d slices
    // through (t, nu, amp) at interactive rates.
    const W: usize = 64;
    const H: usize = 32;
    for (t, nu) in [(0.1, 0.3), (0.6, 0.3), (0.9, 0.8)] {
        // Build the pixel batch: one query point per pixel.
        let mut pixels = Vec::with_capacity(W * H * 5);
        for row in 0..H {
            for col in 0..W {
                pixels.extend_from_slice(&[
                    col as f64 / (W - 1) as f64,
                    1.0 - row as f64 / (H - 1) as f64,
                    t,
                    nu,
                    0.5,
                ]);
            }
        }
        let t0 = Instant::now();
        let values = evaluate_batch_parallel(&grid, &pixels, 64);
        let dt = t0.elapsed();

        let max = values.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        println!(
            "\nslice t={t:.1} nu={nu:.1}  ({W}x{H} pixels decompressed in {dt:.2?}, {:.1} Mpix/s)",
            (W * H) as f64 / dt.as_secs_f64() / 1e6
        );
        const SHADES: &[u8] = b" .:-=+*#%@";
        for row in 0..H {
            let line: String = (0..W)
                .map(|col| {
                    let v = values[row * W + col] / max;
                    let idx =
                        ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                    SHADES[idx] as char
                })
                .collect();
            println!("  {line}");
        }
    }
    println!("\nThe pulse travels to the right and widens with viscosity — decompressed");
    println!("directly from the compact representation, no full grid ever materialized.");

    // --- Progressive transmission: because gp2idx orders coefficients by
    // level, any *prefix* of the stored array is itself a valid coarser
    // grid — a free level-of-detail scheme for slow links.
    println!("\nprogressive streaming (array prefixes are coarser grids):");
    println!(
        "{:>7} {:>10} {:>12} {:>14}",
        "level", "coeffs", "bytes", "est. L1 error"
    );
    for lod in 2..=grid.spec().levels() {
        let prefix = grid.truncated(lod);
        println!(
            "{:>7} {:>10} {:>12} {:>14.2e}",
            lod,
            prefix.len(),
            prefix.len() * 8,
            sg_core::norms::truncation_error_l1(&grid, lod)
        );
    }
    println!("A viewer can render from the first bytes received and sharpen as the rest arrive.");
}
