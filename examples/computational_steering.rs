//! Computational steering end-to-end — the complete Fig. 1 pipeline with
//! a real simulation substrate.
//!
//! A 2-d diffusion simulation is swept over its diffusivity; the
//! resulting 4-dimensional dataset (x, y, time, diffusivity) is
//! compressed into a sparse grid with boundary support (§4.4 — the time
//! and parameter axes do not vanish at their ends). The "steering" part:
//! the compressed surrogate answers what-if queries at parameter values
//! that were never simulated, instantly.
//!
//! Run with: `cargo run --release -p sg-apps --example computational_steering`

use sg_core::boundary::BoundaryGrid;
use sg_sim::{HeatSolver, SweepDataset};
use std::f64::consts::PI;
use std::time::Instant;

fn main() {
    // --- Simulation sweep (the expensive offline part).
    let ic = |x: &[f64]| {
        (PI * x[0]).sin() * (PI * x[1]).sin()
            + 0.5 * (2.0 * PI * x[0]).sin().abs() * x[1] * (1.0 - x[1])
    };
    let times: Vec<f64> = (0..9).map(|k| k as f64 * 0.005).collect();
    let nus: Vec<f64> = vec![0.1, 0.2, 0.4, 0.8, 1.6];
    let t0 = Instant::now();
    let dataset = SweepDataset::generate(2, 5, ic, &times, &nus);
    println!(
        "simulated {} runs × {} snapshots ({} samples) in {:.2?}",
        nus.len(),
        times.len(),
        dataset.total_samples(),
        t0.elapsed()
    );

    // --- Compression into a 4-d sparse grid with boundary support.
    let t0 = Instant::now();
    let mut surrogate: BoundaryGrid<f64> = BoundaryGrid::from_fn(4, 5, |x| dataset.eval(x));
    surrogate.hierarchize();
    println!(
        "compressed into {} sparse grid coefficients ({} bytes) in {:.2?}",
        surrogate.len(),
        surrogate.memory_bytes(),
        t0.elapsed()
    );

    // --- Steering: query a diffusivity that was never simulated.
    // nu01 = 0.55 lies between the ν = 0.4 and ν = 0.8 runs.
    let (t01, nu01) = (0.62, 0.55);
    let t0 = Instant::now();
    let mut probes = 0u32;
    let mut surrogate_center = 0.0;
    for _ in 0..1000 {
        surrogate_center = surrogate.evaluate(&[0.5, 0.5, t01, nu01]);
        probes += 1;
    }
    let per_query = t0.elapsed() / probes;
    println!("\nsurrogate query at untried (t, ν): {surrogate_center:.5} ({per_query:.2?}/query)");

    // Ground truth: actually run that simulation. The dataset's
    // normalized axes address the run lattice in index space, so map the
    // same way.
    let lattice = |axis: &[f64], u: f64| {
        let pos = u * (axis.len() - 1) as f64;
        let k = (pos as usize).min(axis.len() - 2);
        axis[k] + (pos - k as f64) * (axis[k + 1] - axis[k])
    };
    let nu_real = lattice(&nus, nu01);
    let t_real = lattice(&times, t01);
    let t0 = Instant::now();
    let mut solver = HeatSolver::new(2, 5, nu_real, ic);
    solver.advance_to(t_real);
    let truth = solver.snapshot().interpolate(&[0.5, 0.5]);
    println!(
        "fresh simulation at ν={nu_real:.3}, t={t_real:.4}: {truth:.5} ({:.2?})",
        t0.elapsed()
    );
    let err = (surrogate_center - truth).abs();
    println!("steering error: {err:.2e} — at ~10^4-10^6x lower latency than re-simulating");
    // The surrogate interpolates the *run lattice*, so some model error
    // vs a fresh simulation is expected; it must stay small.
    assert!(err < 0.05, "steering error too large: {err}");

    // --- Interactive slice at the untried parameters.
    const W: usize = 56;
    const H: usize = 24;
    let mut values = vec![0.0; W * H];
    for row in 0..H {
        for col in 0..W {
            values[row * W + col] = surrogate.evaluate(&[
                col as f64 / (W - 1) as f64,
                1.0 - row as f64 / (H - 1) as f64,
                t01,
                nu01,
            ]);
        }
    }
    let max = values.iter().copied().fold(1e-12f64, f64::max);
    const SHADES: &[u8] = b" .:-=+*#%@";
    println!("\ntemperature field at the steered (t, ν):");
    for row in 0..H {
        let line: String = (0..W)
            .map(|col| {
                let v = (values[row * W + col] / max).clamp(0.0, 1.0);
                SHADES[(v * (SHADES.len() - 1) as f64).round() as usize] as char
            })
            .collect();
        println!("  {line}");
    }
}
