//! Quickstart: build a sparse grid, compress (hierarchize), and
//! decompress (evaluate) — the minimal end-to-end use of the library.
//!
//! Run with: `cargo run --release -p sg-apps --example quickstart`

use sg_core::prelude::*;

fn main() {
    // A 6-dimensional function on [0,1]^6 we want to represent compactly.
    let f = |x: &[f64]| x.iter().map(|&v| 4.0 * v * (1.0 - v)).product::<f64>();

    // A regular sparse grid of refinement level 7 needs 78k points where
    // a full grid at the same resolution would need (2^7 - 1)^6 ≈ 4.4e12.
    let spec = GridSpec::new(6, 7);
    println!("sparse grid points : {}", spec.num_points());
    println!(
        "full grid points   : {:.3e}",
        (FullGrid::<f64>::points_per_dim(7) as f64).powi(6)
    );

    // Sample the function at the grid points (this is the state a
    // simulation would hand over for compression)...
    let mut grid = CompactGrid::from_fn_parallel(spec, f);
    println!(
        "storage            : {} bytes ({:.1} B/point)",
        grid.memory_bytes(),
        grid.memory_bytes() as f64 / grid.len() as f64
    );

    // ...compress it into hierarchical surpluses (in place, no extra
    // memory)...
    hierarchize_parallel(&mut grid);

    // ...and decompress anywhere in the domain.
    let probes = [
        vec![0.5; 6],
        vec![0.25, 0.75, 0.5, 0.5, 0.125, 0.875],
        vec![0.3142, 0.2719, 0.5773, 0.6933, 0.4143, 0.7072],
    ];
    println!(
        "\n{:<55} {:>10} {:>10} {:>9}",
        "x", "f(x)", "sparse", "error"
    );
    for x in &probes {
        let exact = f(x);
        let approx = evaluate(&grid, x);
        println!(
            "{:<55} {:>10.6} {:>10.6} {:>9.2e}",
            format!("{x:.4?}"),
            exact,
            approx,
            (exact - approx).abs()
        );
    }

    // Interpolation is exact at grid points.
    let on_grid = [0.5, 0.25, 0.75, 0.5, 0.125, 0.5];
    assert!((evaluate(&grid, &on_grid) - f(&on_grid)).abs() < 1e-12);
    println!("\ninterpolation at a grid point is exact ✓");
}
