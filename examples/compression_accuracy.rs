//! Compression accuracy study: sparse vs full grids against the curse of
//! dimensionality (the paper's §1–2 motivation).
//!
//! For smooth functions, a sparse grid of level L matches the accuracy of
//! a full level-L grid up to a logarithmic factor while storing
//! `O(N·(log N)^{d−1})` instead of `O(N^d)` values. This example measures
//! both sides: interpolation error and point counts as the level grows,
//! and the error/memory trade-off as the dimension grows.
//!
//! Run with: `cargo run --release -p sg-apps --example compression_accuracy`

use sg_core::prelude::*;

/// Max-norm interpolation error over a quasi-random probe set.
fn sparse_error(d: usize, level: usize, f: &TestFunction, probes: &[f64]) -> f64 {
    let mut g = CompactGrid::from_fn(GridSpec::new(d, level), |x| f.eval(x));
    hierarchize(&mut g);
    probes
        .chunks_exact(d)
        .map(|x| (evaluate(&g, x) - f.eval(x)).abs())
        .fold(0.0, f64::max)
}

fn full_error(d: usize, level: usize, f: &TestFunction, probes: &[f64]) -> f64 {
    let g = FullGrid::from_fn(d, level, |x| f.eval(x));
    probes
        .chunks_exact(d)
        .map(|x| (g.interpolate(x) - f.eval(x)).abs())
        .fold(0.0, f64::max)
}

fn main() {
    let f = TestFunction::Parabola;

    println!(
        "=== error decay with level (d = 3, function: {}) ===",
        f.name()
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "level", "sparse pts", "full pts", "sparse err", "full err", "ratio"
    );
    let probes = halton_points(3, 2000);
    for level in 2..=8 {
        let sp = GridSpec::new(3, level).num_points();
        let fp = FullGrid::<f64>::total_points(3, level).unwrap();
        let se = sparse_error(3, level, &f, &probes);
        let fe = full_error(3, level, &f, &probes);
        println!(
            "{level:>5} {sp:>12} {fp:>12} {se:>12.3e} {fe:>12.3e} {:>10.1}",
            fp as f64 / sp as f64
        );
    }
    println!("→ sparse error tracks full-grid error while the point ratio explodes.\n");

    println!("=== curse of dimensionality at level 6 ===");
    println!(
        "{:>3} {:>12} {:>16} {:>12} {:>14}",
        "d", "sparse pts", "full pts", "sparse err", "sparse bytes"
    );
    for d in 2..=10 {
        let spec = GridSpec::new(d, 6);
        let probes = halton_points(d, 500);
        let err = sparse_error(d, 6, &f, &probes);
        let full_pts = FullGrid::<f64>::total_points(d, 6)
            .map(|p| format!("{p:e}"))
            .unwrap_or_else(|| "> 1.8e19".into());
        println!(
            "{d:>3} {:>12} {:>16} {err:>12.3e} {:>14}",
            spec.num_points(),
            full_pts,
            spec.num_points() * 8,
        );
    }
    println!(
        "→ the sparse grid stays tractable where the full grid long stopped fitting in RAM.\n"
    );

    println!("=== per-function behaviour (d = 4, level 7) ===");
    let probes = halton_points(4, 1000);
    println!(
        "{:>14} {:>12} {:>16}",
        "function", "max error", "zero boundary?"
    );
    for func in TestFunction::ALL {
        if !func.is_zero_boundary() && func != TestFunction::Gaussian {
            continue; // zero-boundary grids cannot represent these; see boundary_grids example
        }
        let err = sparse_error(4, 7, &func, &probes);
        println!(
            "{:>14} {err:>12.3e} {:>16}",
            func.name(),
            func.is_zero_boundary()
        );
    }
    println!("→ smooth zero-boundary functions compress best; for non-zero boundaries");
    println!("  see the boundary_grids example (paper §4.4).");
}
