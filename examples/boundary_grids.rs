//! Non-zero-boundary sparse grids (paper §4.4): representing functions
//! that do not vanish on the domain boundary.
//!
//! The boundary of a d-dimensional sparse grid decomposes into
//! `2^j·C(d,j)` lower-dimensional sparse grids per dimensionality class;
//! this example shows the decomposition, and how badly a zero-boundary
//! grid fails on such functions compared to the extension.
//!
//! Run with: `cargo run --release -p sg-apps --example boundary_grids`

use sg_core::boundary::BoundaryGrid;
use sg_core::prelude::*;

fn main() {
    let d = 3;
    let levels = 5;
    let f = TestFunction::Reciprocal; // 1/(1+Σx), non-zero everywhere

    // --- The face decomposition (paper Fig. 7 for d = 3).
    let grid: BoundaryGrid<f64> = BoundaryGrid::new(d, levels);
    let ix = grid.indexer();
    println!("face decomposition of a {d}-d boundary sparse grid (paper Fig. 7):");
    for j in 0..=d {
        let faces: Vec<_> = ix
            .faces()
            .iter()
            .filter(|face| face.num_fixed() as usize == j)
            .collect();
        println!(
            "  {} faces of dimensionality {} (formula: 2^{j}·C({d},{j}) = {})",
            faces.len(),
            d - j,
            (1 << j) * sg_core::combinatorics::binomial(d as u64, j as u64)
        );
    }
    println!(
        "  total points: {} (interior alone: {})\n",
        ix.num_points(),
        GridSpec::new(d, levels).num_points()
    );

    // --- Fit the function with and without boundary support.
    let mut with_boundary: BoundaryGrid<f64> = BoundaryGrid::from_fn(d, levels, |x| f.eval(x));
    with_boundary.hierarchize();

    let mut without: CompactGrid<f64> =
        CompactGrid::from_fn(GridSpec::new(d, levels), |x| f.eval(x));
    hierarchize(&mut without);

    let probes = halton_points(d, 2000);
    let mut err_with = 0.0f64;
    let mut err_without = 0.0f64;
    for x in probes.chunks_exact(d) {
        err_with = err_with.max((with_boundary.evaluate(x) - f.eval(x)).abs());
        err_without = err_without.max((evaluate(&without, x) - f.eval(x)).abs());
    }
    println!(
        "max interpolation error for {} (non-zero boundary):",
        f.name()
    );
    println!(
        "  zero-boundary grid   : {err_without:.3e}   ({} points)",
        GridSpec::new(d, levels).num_points()
    );
    println!(
        "  boundary extension   : {err_with:.3e}   ({} points)",
        ix.num_points()
    );
    println!("  improvement          : {:.0}x\n", err_without / err_with);

    // --- Affine functions are represented *exactly* by the corners alone.
    let affine = |x: &[f64]| 1.0 + 2.0 * x[0] - 0.5 * x[1] + 0.25 * x[2];
    let mut g: BoundaryGrid<f64> = BoundaryGrid::from_fn(d, levels, affine);
    g.hierarchize();
    let worst = probes
        .chunks_exact(d)
        .map(|x| (g.evaluate(x) - affine(x)).abs())
        .fold(0.0, f64::max);
    println!("affine function reproduced everywhere to {worst:.1e} (exact up to rounding) ✓");

    // Storage remains a single contiguous array.
    println!(
        "storage: {} bytes for {} coefficients — still one flat array, gp2idx per face",
        g.memory_bytes(),
        g.len()
    );
}
