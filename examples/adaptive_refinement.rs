//! Spatially adaptive sparse grids — the flexibility side of the paper's
//! trade-off (§7: hash-based structures "keep the access structures as
//! flexible as possible and suitable for adaptive refinement", while the
//! compact structure trades that flexibility for efficiency).
//!
//! A function with a sharp localized feature is approximated three ways:
//! regular compact grid, adaptive hash-backed grid, and a regular grid
//! with the same point budget as the adaptive one.
//!
//! Run with: `cargo run --release -p sg-apps --example adaptive_refinement`

use sg_adaptive::AdaptiveSparseGrid;
use sg_core::prelude::*;

fn main() {
    // A narrow ridge: almost all of the information sits near (0.3, 0.7).
    let f = |x: &[f64]| {
        (-400.0 * ((x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2))).exp()
            + 0.05 * x[0] * (1.0 - x[0]) * x[1] * (1.0 - x[1])
    };
    let probes = halton_points(2, 3000);
    let max_err_regular = |g: &CompactGrid<f64>| {
        probes
            .chunks_exact(2)
            .map(|x| (evaluate(g, x) - f(x)).abs())
            .fold(0.0f64, f64::max)
    };
    let max_err_adaptive = |g: &AdaptiveSparseGrid| {
        probes
            .chunks_exact(2)
            .map(|x| (g.evaluate(x) - f(x)).abs())
            .fold(0.0f64, f64::max)
    };

    println!(
        "{:>28} {:>9} {:>12} {:>14}",
        "representation", "points", "max error", "bytes"
    );

    // Adaptive: refine where the surplus says the function lives.
    let mut adaptive = AdaptiveSparseGrid::new(2);
    adaptive.refine_by_surplus(&f, 1e-4, 3000, 14);
    println!(
        "{:>28} {:>9} {:>12.3e} {:>14}",
        "adaptive (hash-backed)",
        adaptive.len(),
        max_err_adaptive(&adaptive),
        adaptive.memory_bytes()
    );

    // Regular grid with a similar point budget.
    let mut level = 1;
    while GridSpec::new(2, level + 1).num_points() <= adaptive.len() as u64 {
        level += 1;
    }
    let spec = GridSpec::new(2, level);
    let mut same_budget = CompactGrid::from_fn(spec, f);
    hierarchize(&mut same_budget);
    println!(
        "{:>28} {:>9} {:>12.3e} {:>14}",
        format!("regular level {level} (compact)"),
        spec.num_points(),
        max_err_regular(&same_budget),
        same_budget.memory_bytes()
    );

    // Regular grid that reaches the adaptive accuracy.
    for lvl in level..=14 {
        let spec = GridSpec::new(2, lvl);
        let mut g = CompactGrid::from_fn(spec, f);
        hierarchize(&mut g);
        let err = max_err_regular(&g);
        if err <= max_err_adaptive(&adaptive) || lvl == 14 {
            println!(
                "{:>28} {:>9} {:>12.3e} {:>14}",
                format!("regular level {lvl} (compact)"),
                spec.num_points(),
                err,
                g.memory_bytes()
            );
            println!(
                "\nThe adaptive grid needs {:.1}x fewer points for this localized feature,\n\
                 but pays {:.0} bytes/point (hash entries) instead of 8 — the paper's\n\
                 flexibility/efficiency trade-off in both directions.",
                spec.num_points() as f64 / adaptive.len() as f64,
                adaptive.memory_bytes() as f64 / adaptive.len() as f64,
            );
            break;
        }
    }

    assert!(adaptive.is_downset_closed());
}
