//! The combination technique vs the direct compact method — the paper's
//! related-work comparison (§7) made runnable.
//!
//! The combination technique approximates the sparse grid interpolant by
//! an inclusion–exclusion sum of anisotropic full-grid interpolants. For
//! interpolation the identity is exact — verified below — but "grid
//! points and corresponding function values have to be replicated across
//! multiple full grids. Thus, higher memory requirements have to be met."
//!
//! Run with: `cargo run --release -p sg-apps --example combination_technique`

use sg_combination::CombinationGrid;
use sg_core::prelude::*;
use std::time::Instant;

fn main() {
    let f = TestFunction::Gaussian;
    println!(
        "{:>3} {:>12} {:>12} {:>7} {:>12} {:>12} {:>12}",
        "d", "direct pts", "comb pts", "repl.", "direct B", "comb B", "max |Δ|"
    );

    for d in 2..=6 {
        let spec = GridSpec::new(d, 6);

        // Direct method: compact storage + hierarchization.
        let mut direct = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
        hierarchize(&mut direct);

        // Combination technique: independent anisotropic full grids
        // (each trivially parallel — its selling point).
        let comb = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));

        // The interpolants coincide (exact identity for interpolation).
        let probes = halton_points(d, 300);
        let max_delta = probes
            .chunks_exact(d)
            .map(|x| (comb.evaluate(x) - evaluate(&direct, x)).abs())
            .fold(0.0f64, f64::max);

        println!(
            "{d:>3} {:>12} {:>12} {:>6.2}x {:>12} {:>12} {:>12.2e}",
            spec.num_points(),
            comb.total_points(),
            comb.replication_factor(),
            direct.memory_bytes(),
            comb.memory_bytes(),
            max_delta
        );
        assert!(max_delta < 1e-10, "combination identity violated");
    }

    // Throughput comparison at d = 5.
    let d = 5;
    let spec = GridSpec::new(d, 6);
    let mut direct = CompactGrid::<f64>::from_fn(spec, |x| f.eval(x));
    hierarchize(&mut direct);
    let comb = CombinationGrid::<f64>::from_fn(spec, |x| f.eval(x));
    let xs = halton_points(d, 20_000);

    let t0 = Instant::now();
    let a = evaluate_batch_parallel(&direct, &xs, 64);
    let t_direct = t0.elapsed();
    let t0 = Instant::now();
    let b = comb.evaluate_batch_parallel(&xs);
    let t_comb = t0.elapsed();
    let worst = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);

    println!(
        "\nbatch evaluation of 20k points at d={d}: direct {:?}, combination {:?} ({} grids), agree to {worst:.1e}",
        t_direct,
        t_comb,
        comb.components().len()
    );
    println!(
        "The combination technique buys trivial parallelism with {:.1}x memory replication —\n\
         the direct compact method gets the same interpolant from a single contiguous array.",
        comb.replication_factor()
    );
}
