//! Parallel decompression throughput — the paper's visualization workload
//! (§5.3: "the number of interpolation points is typically around 10⁵").
//!
//! Measures batch evaluation throughput sequential vs blocked vs
//! thread-parallel, and runs the same workload through the simulated
//! Tesla C1060 for comparison.
//!
//! Run with: `cargo run --release -p sg-apps --example parallel_throughput [points]`

use sg_core::evaluate::{evaluate_batch, evaluate_batch_blocked, evaluate_batch_parallel};
use sg_core::prelude::*;
use sg_gpu::{evaluate_gpu, GpuDevice, KernelConfig};
use std::time::Instant;

fn main() {
    let n_points: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let d = 6;
    let spec = GridSpec::new(d, 7);

    println!(
        "grid: d={d}, level 7, {} points; evaluating at {n_points} query points",
        spec.num_points()
    );
    let mut grid = CompactGrid::from_fn_parallel(spec, |x| {
        x.iter()
            .map(|&v| (std::f64::consts::PI * v).sin())
            .product()
    });
    hierarchize_parallel(&mut grid);
    let xs = halton_points(d, n_points);

    let mpts = |dt: std::time::Duration| n_points as f64 / dt.as_secs_f64() / 1e6;

    // Sequential, straight Alg. 7 per point.
    let small = &xs[..xs.len().min(10_000 * d)];
    let t0 = Instant::now();
    let seq = evaluate_batch(&grid, small);
    let t_seq = t0.elapsed();
    println!(
        "sequential          : {:>8.3} Mpts/s  (measured on {} points)",
        small.len() as f64 / d as f64 / t_seq.as_secs_f64() / 1e6,
        small.len() / d
    );

    // Blocked (paper §4.3): subspaces stay cache-resident across a block.
    let t0 = Instant::now();
    let blocked = evaluate_batch_blocked(&grid, &xs, 64);
    let t_blocked = t0.elapsed();
    println!("blocked (64)        : {:>8.3} Mpts/s", mpts(t_blocked));

    // Thread-parallel over query points (embarrassingly parallel, the
    // paper's static decomposition).
    let t0 = Instant::now();
    let parallel = evaluate_batch_parallel(&grid, &xs, 64);
    let t_par = t0.elapsed();
    println!(
        "threads ({:>2})        : {:>8.3} Mpts/s  ({:.2}x over blocked)",
        sg_par::num_threads(),
        mpts(t_par),
        t_blocked.as_secs_f64() / t_par.as_secs_f64()
    );

    // Cross-check all paths agree.
    assert_eq!(&parallel[..seq.len()], &seq[..]);
    assert_eq!(parallel, blocked);

    // The same workload on the simulated Tesla C1060 (f32, as the paper).
    let mut g32: CompactGrid<f32> = CompactGrid::from_fn(spec, |x| {
        x.iter()
            .map(|&v| (std::f64::consts::PI * v).sin())
            .product::<f64>() as f32
    });
    sg_core::hierarchize::hierarchize(&mut g32);
    let dev = GpuDevice::tesla_c1060();
    let (gpu_vals, report) = evaluate_gpu(&g32, &xs, &dev, &KernelConfig::default());
    println!(
        "Tesla C1060 (model) : {:>8.3} Mpts/s  (occupancy {:.0}%, {} transactions)",
        n_points as f64 / report.time.total / 1e6,
        report.occupancy.fraction * 100.0,
        report.counters.transactions
    );
    // The simulated kernel computes real values.
    let max_dev = gpu_vals
        .iter()
        .zip(&parallel)
        .map(|(&a, &b): (&f32, &f64)| (a as f64 - b).abs())
        .fold(0.0f64, f64::max);
    println!("gpu-sim vs cpu max deviation: {max_dev:.2e} (f32 storage vs f64)");
}
